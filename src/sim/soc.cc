#include "sim/soc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/log.h"
#include "sim/compute_model.h"
#include "sim/traffic_model.h"

namespace moca::sim {

namespace {

constexpr double kInf = 1e30;
constexpr Cycles kNoArrival = std::numeric_limits<Cycles>::max();

} // anonymous namespace

void
Policy::onBlockBoundary(Soc &, int)
{
}

void
Policy::onJobComplete(Soc &, int)
{
}

Soc::Soc(const SocConfig &cfg, Policy &policy)
    : cfg_(cfg), policy_(policy),
      mem_(mem::MemoryModelRegistry::instance().make(cfg.memModel,
                                                     cfg))
{
    if (cfg_.numTiles < 1)
        fatal("SoC needs at least one tile");
    if (cfg_.quantum < 1)
        fatal("quantum must be positive");
    if (cfg_.schedPeriod < 1)
        fatal("scheduler period must be positive");
    trace_.setSocId(cfg_.socId);
}

void
Soc::addJob(const JobSpec &spec)
{
    if (spec.model == nullptr)
        fatal("job %d has no model", spec.id);
    if (spec.id != static_cast<int>(jobs_.size()))
        fatal("job ids must be dense and in insertion order "
              "(got %d, expected %zu)", spec.id, jobs_.size());
    Job job;
    job.spec = spec;
    jobs_.push_back(std::move(job));
    hot_.emplace_back();
    sorted_ = false;
}

void
Soc::sortArrivals()
{
    arrival_order_.resize(jobs_.size());
    for (std::size_t i = 0; i < jobs_.size(); ++i)
        arrival_order_[i] = static_cast<int>(i);
    std::stable_sort(arrival_order_.begin(), arrival_order_.end(),
                     [&](int a, int b) {
                         return jobs_[a].spec.dispatch <
                             jobs_[b].spec.dispatch;
                     });
    next_arrival_ = 0;
    sorted_ = true;
}

Cycles
Soc::nextArrivalCycle() const
{
    if (next_arrival_ >= arrival_order_.size())
        return kNoArrival;
    return jobs_[arrival_order_[next_arrival_]].spec.dispatch;
}

bool
Soc::admitArrivals()
{
    bool any = false;
    while (next_arrival_ < arrival_order_.size()) {
        const int id = arrival_order_[next_arrival_];
        const Job &j = jobs_[static_cast<std::size_t>(id)];
        if (j.spec.dispatch > now_)
            break;
        hot_[static_cast<std::size_t>(id)].state = JobState::Waiting;
        waitingAdd(id);
        trace_.record(now_, TraceEventKind::JobDispatched, id);
        ++next_arrival_;
        any = true;
    }
    if (any)
        ++waiting_epoch_;
    return any;
}

Job &
Soc::job(int id)
{
    if (id < 0 || id >= static_cast<int>(jobs_.size()))
        panic("bad job id %d", id);
    return jobs_[static_cast<std::size_t>(id)];
}

const Job &
Soc::job(int id) const
{
    return const_cast<Soc *>(this)->job(id);
}

JobHot &
Soc::hotRef(int id)
{
    if (id < 0 || id >= static_cast<int>(hot_.size()))
        panic("bad job id %d", id);
    return hot_[static_cast<std::size_t>(id)];
}

const JobHot &
Soc::hot(int id) const
{
    return const_cast<Soc *>(this)->hotRef(id);
}

void
Soc::insertSorted(std::vector<int> &ids, int id)
{
    // Ascending id order — the order the old jobs_ scans produced —
    // keeps the policy-facing queries deterministic and
    // scan-identical.
    ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
}

void
Soc::eraseSorted(std::vector<int> &ids, int id)
{
    const auto it = std::lower_bound(ids.begin(), ids.end(), id);
    if (it == ids.end() || *it != id)
        panic("job %d is not in the tracked set", id);
    ids.erase(it);
}

void
Soc::waitingAdd(int id)
{
    // Appending an id above the current tail keeps the view sorted
    // (the common case: arrivals come in ascending-id bursts).
    if (waiting_view_sorted_ && !waiting_ids_.empty() &&
        id < waiting_ids_.back())
        waiting_view_sorted_ = false;
    waiting_pos_[static_cast<std::size_t>(id)] =
        static_cast<int>(waiting_ids_.size());
    waiting_ids_.push_back(id);
}

void
Soc::waitingRemove(int id)
{
    const int pos = waiting_pos_[static_cast<std::size_t>(id)];
    if (pos < 0 ||
        waiting_ids_[static_cast<std::size_t>(pos)] != id)
        panic("job %d is not in the waiting set", id);
    const int last = waiting_ids_.back();
    if (last != id) {
        waiting_ids_[static_cast<std::size_t>(pos)] = last;
        waiting_pos_[static_cast<std::size_t>(last)] = pos;
        waiting_view_sorted_ = false;
    }
    waiting_ids_.pop_back();
    waiting_pos_[static_cast<std::size_t>(id)] = -1;
}

void
Soc::sortWaitingView() const
{
    if (waiting_view_sorted_)
        return;
    std::sort(waiting_ids_.begin(), waiting_ids_.end());
    for (std::size_t i = 0; i < waiting_ids_.size(); ++i)
        waiting_pos_[static_cast<std::size_t>(waiting_ids_[i])] =
            static_cast<int>(i);
    waiting_view_sorted_ = true;
}

int
Soc::freeTiles() const
{
    if (used_tiles_ > cfg_.numTiles)
        panic("tile over-allocation: %d of %d", used_tiles_,
              cfg_.numTiles);
    return cfg_.numTiles - used_tiles_;
}

std::uint64_t
Soc::effectiveCacheBytes() const
{
    return cfg_.l2Bytes / static_cast<std::uint64_t>(std::max<
        std::size_t>(1, running_ids_.size()));
}

void
Soc::addRunning(int id, int tiles)
{
    insertSorted(running_ids_, id);
    used_tiles_ += tiles;
    ++running_epoch_;
    debugCheckCounters();
}

void
Soc::dropRunning(int id, int tiles)
{
    eraseSorted(running_ids_, id);
    used_tiles_ -= tiles;
    ++running_epoch_;
    debugCheckCounters();
}

void
Soc::debugCheckCounters() const
{
#ifndef NDEBUG
    // The counters must track the job states exactly; a drift here
    // would silently mis-model capacity/bandwidth contention.  Only
    // verified at state transitions (not per step), so debug builds
    // pay O(jobs) per lifecycle event, not per simulated quantum.
    int scanned = 0, used = 0;
    std::size_t done = 0, waiting = 0;
    for (const auto &h : hot_) {
        if (h.state == JobState::Running) {
            ++scanned;
            used += h.numTiles;
        }
        if (h.state == JobState::Waiting ||
            h.state == JobState::Paused)
            ++waiting;
        if (h.state == JobState::Done)
            ++done;
    }
    if (scanned != static_cast<int>(running_ids_.size()) ||
        used != used_tiles_ || done != done_jobs_ ||
        waiting != waiting_ids_.size())
        panic("running-set counter drift: %zu/%d tracked, %d/%d "
              "scanned, done %zu/%zu, waiting %zu/%zu",
              running_ids_.size(), used_tiles_, scanned, used,
              done_jobs_, done, waiting_ids_.size(), waiting);
#endif
}

void
Soc::startJob(int id, int num_tiles, Cycles resume_penalty)
{
    Job &j = job(id);
    JobHot &h = hotRef(id);
    if (h.state != JobState::Waiting && h.state != JobState::Paused)
        panic("startJob(%d): job is not startable (state %d)",
              id, static_cast<int>(h.state));
    if (num_tiles < 1)
        panic("startJob(%d): need >= 1 tile", id);
    if (num_tiles > freeTiles())
        panic("startJob(%d): %d tiles requested, %d free",
              id, num_tiles, freeTiles());

    h.state = JobState::Running;
    h.numTiles = num_tiles;
    waitingRemove(id);
    ++waiting_epoch_;
    addRunning(id, num_tiles);
    h.exec.valid = false;
    if (resume_penalty > 0)
        h.stallUntil = std::max(h.stallUntil, now_ + resume_penalty);
    trace_.record(now_,
                  j.started ? TraceEventKind::JobResumed
                            : TraceEventKind::JobStarted,
                  id, num_tiles);
    if (!j.started) {
        j.started = true;
        j.firstStart = now_;
    }
    j.throttle.reset();
}

void
Soc::resizeJob(int id, int num_tiles, bool charge_migration)
{
    JobHot &h = hotRef(id);
    if (h.state != JobState::Running)
        panic("resizeJob(%d): job is not running", id);
    if (num_tiles == h.numTiles)
        return;
    if (num_tiles < 1)
        panic("resizeJob(%d): need >= 1 tile", id);
    const int avail = freeTiles() + h.numTiles;
    if (num_tiles > avail)
        panic("resizeJob(%d): %d tiles requested, %d available",
              id, num_tiles, avail);

    used_tiles_ += num_tiles - h.numTiles;
    h.numTiles = num_tiles;
    // A tile-allocation change invalidates running-set-derived memos
    // (e.g. MoCA's co-runner mix bias) even though membership is
    // unchanged.
    ++running_epoch_;
    // The layer restarts under the new tiling; the migration stall
    // dominates the lost partial-layer work.
    h.exec.valid = false;
    if (charge_migration) {
        h.stallUntil = std::max(h.stallUntil,
                                now_ + cfg_.migrationCycles);
        job(id).migrations++;
    }
    trace_.record(now_, TraceEventKind::JobResized, id, num_tiles);
}

void
Soc::pauseJob(int id)
{
    JobHot &h = hotRef(id);
    if (h.state != JobState::Running)
        panic("pauseJob(%d): job is not running", id);
    h.state = JobState::Paused;
    waitingAdd(id);
    ++waiting_epoch_;
    dropRunning(id, h.numTiles);
    h.numTiles = 0;
    h.exec.valid = false; // partial layer progress is discarded
    job(id).preemptions++;
    trace_.record(now_, TraceEventKind::JobPaused, id);
}

void
Soc::configureThrottle(int id, const hw::ThrottleConfig &tcfg)
{
    Job &j = job(id);
    j.throttle.configure(tcfg);
    trace_.record(now_, TraceEventKind::ThrottleConfig, id,
                  static_cast<long long>(tcfg.windowCycles));
}

void
Soc::beginLayer(int id)
{
    JobHot &h = hot_[static_cast<std::size_t>(id)];
    const dnn::Model &model =
        *jobs_[static_cast<std::size_t>(id)].spec.model;
    const dnn::Layer &layer = model.layer(h.layerIdx);

    const Cycles cc = computeCycles(layer, h.numTiles, cfg_);
    const LayerTraffic traffic =
        layerTraffic(layer, h.numTiles, cfg_, effectiveCacheBytes());

    h.exec.computeRem = static_cast<double>(cc);
    h.exec.l2Rem = static_cast<double>(traffic.l2Bytes);
    h.exec.dramRem = static_cast<double>(traffic.dramBytes);
    h.exec.valid = true;
}

double
Soc::layerRemainingTime(const JobHot &hot, double service) const
{
    const LayerExecState &e = hot.exec;
    const double c = e.computeRem;
    if (service <= 0.0)
        return kInf;
    // Memory time at the job's private DMA caps, inflated by the
    // service ratio the shared channels granted.  DRAM refills flow
    // through the L2 pipeline concurrently, so the memory time is the
    // slower of the two channels, not their sum.
    const double cap = cfg_.tileDmaBytesPerCycle *
        std::max(1, hot.numTiles);
    const double dram_cap = std::min(cap, cfg_.dramBytesPerCycle);
    const double l2_cap = std::min(cap, cfg_.l2BytesPerCycle());
    const double m_cap =
        std::max(e.dramRem / dram_cap, e.l2Rem / l2_cap);
    const double m = m_cap / service;
    const double f = cfg_.overlapF;
    return std::max(c, m) + f * std::min(c, m);
}

Soc::AdvanceOutcome
Soc::advanceJob(int id, Cycles quantum, double service,
                double dram_budget, double l2_budget)
{
    AdvanceOutcome out;
    double t = static_cast<double>(quantum);
    JobHot &job = hot_[static_cast<std::size_t>(id)];
    const dnn::Model &model =
        *jobs_[static_cast<std::size_t>(id)].spec.model;

    while (t > 1e-9) {
        if (!job.exec.valid)
            beginLayer(id);

        double t_rem = layerRemainingTime(job, service);
        // Hard grant clamps: progress cannot consume more bytes than
        // the arbiters granted this quantum.
        double df_max = t / t_rem;
        if (job.exec.dramRem > 1e-9)
            df_max = std::min(df_max,
                              dram_budget / job.exec.dramRem);
        if (job.exec.l2Rem > 1e-9)
            df_max = std::min(df_max, l2_budget / job.exec.l2Rem);

        if (df_max >= 1.0 && t_rem <= t) {
            // Layer completes within this quantum.
            out.dramConsumed += job.exec.dramRem;
            out.l2Consumed += job.exec.l2Rem;
            dram_budget -= job.exec.dramRem;
            l2_budget -= job.exec.l2Rem;
            t -= t_rem;
            job.exec = LayerExecState();
            job.layerIdx++;

            if (job.layerIdx >= model.numLayers()) {
                out.jobComplete = true;
                break;
            }
            const auto &blocks = model.blocks();
            if (job.blockIdx + 1 < blocks.size() &&
                job.layerIdx >= blocks[job.blockIdx + 1].first) {
                job.blockIdx++;
                out.blockBoundary = true;
                // Give the policy a reconfiguration opportunity
                // before the next block begins.
                break;
            }
            if (cfg_.layerBoundaryEvents) {
                // Granularity ablation: boundary hook per layer.
                out.blockBoundary = true;
                break;
            }
        } else {
            const double frac = std::min(df_max, t / t_rem);
            const double dram_used = frac * job.exec.dramRem;
            const double l2_used = frac * job.exec.l2Rem;
            out.dramConsumed += dram_used;
            out.l2Consumed += l2_used;
            dram_budget -= dram_used;
            l2_budget -= l2_used;
            job.exec.computeRem *= 1.0 - frac;
            job.exec.dramRem *= 1.0 - frac;
            job.exec.l2Rem *= 1.0 - frac;
            t = 0.0;
        }
    }
    return out;
}

void
Soc::completeJob(int id)
{
    JobHot &h = hot_[static_cast<std::size_t>(id)];
    Job &job = jobs_[static_cast<std::size_t>(id)];
    const bool was_running = h.state == JobState::Running;
    h.state = JobState::Done;
    ++done_jobs_;
    if (was_running)
        dropRunning(id, h.numTiles);
    h.numTiles = 0;
    job.finish = now_;

    JobResult r;
    r.spec = job.spec;
    r.firstStart = job.firstStart;
    r.finish = job.finish;
    r.dramBytesMoved = job.dramBytesMoved;
    r.l2BytesMoved = job.l2BytesMoved;
    r.stallCycles = job.stallCycles;
    r.migrations = job.migrations;
    r.preemptions = job.preemptions;
    r.throttleReconfigs =
        static_cast<int>(job.throttle.stats().reconfigurations);
    results_.push_back(r);
    trace_.record(now_, TraceEventKind::JobCompleted, id);
    if (tele_done_) {
        tele_done_->add();
        tele_latency_->observe(
            static_cast<double>(now_ - job.spec.dispatch));
    }
}

void
Soc::invokePolicy(SchedEvent event)
{
    stats_.schedInvocations++;
    policy_.schedule(*this, event);
}

// --- Shared step phases -----------------------------------------------

bool
Soc::schedulingPoints(Cycles horizon)
{
    if (admitArrivals())
        invokePolicy(SchedEvent::JobArrival);
    if (now_ >= next_sched_tick_) {
        trace_.record(now_, TraceEventKind::SchedTick, -1);
        invokePolicy(SchedEvent::PeriodicTick);
        next_sched_tick_ = now_ + cfg_.schedPeriod;
    }

    if (!running_ids_.empty())
        return true;

    const Cycles na = nextArrivalCycle();
    if (na != kNoArrival) {
        // Idle-advance to the next arrival, but never past a periodic
        // tick (the tick cadence stays exact across idle gaps) or the
        // caller's horizon (a co-simulator may inject work there).
        Cycles target = std::min(na, next_sched_tick_);
        if (horizon != 0)
            target = std::min(target, horizon);
        now_ = std::max(now_, target);
        return false;
    }
    // No arrivals left and nothing running: the policy must start a
    // waiting/paused job now or we are deadlocked.
    invokePolicy(SchedEvent::PeriodicTick);
    if (running_ids_.empty() && !allDone())
        fatal("policy deadlock: %zu jobs unfinished, nothing "
              "running, no arrivals pending", waiting_ids_.size());
    return !running_ids_.empty();
}

void
Soc::computeDemands(const std::vector<int> &running, Cycles horizon,
                    std::vector<DemandEntry> &entries)
{
    entries.clear();

    for (int id : running) {
        JobHot &j = hot_[static_cast<std::size_t>(id)];
        hw::ThrottleEngine &throttle =
            jobs_[static_cast<std::size_t>(id)].throttle;
        DemandEntry e;
        e.id = id;
        if (j.stallUntil > now_) {
            e.stalled = true;
            entries.push_back(e);
            continue;
        }
        if (!j.exec.valid)
            beginLayer(id);

        // Private (uncontended) rate cap of the job's DMA engines.
        const double cap =
            cfg_.tileDmaBytesPerCycle * j.numTiles;
        const double t_full = layerRemainingTime(j, 1.0);
        const double q = static_cast<double>(horizon);

        double l2_des, dram_des;
        if (t_full >= kInf) {
            l2_des = dram_des = 0.0;
        } else if (t_full <= q) {
            // Layer (and possibly more) finishes within the
            // step at private speed: ask for the full rate.
            l2_des = std::min(j.exec.l2Rem + q * cap * 0.25,
                              q * cap);
            dram_des = std::min(j.exec.dramRem + q * cap * 0.25,
                                q * cap);
        } else {
            // The decoupled DMA runs ahead of compute: it issues
            // at up to dmaRunAhead x the balanced rate until the
            // scratchpad double-buffer backpressures.
            const double ahead = std::max(1.0, cfg_.dmaRunAhead);
            l2_des = std::min(q * cap,
                              ahead * q * (j.exec.l2Rem / t_full));
            dram_des = std::min(
                q * cap, ahead * q * (j.exec.dramRem / t_full));
        }

        // MoCA throttle: cap by the per-tile window allowance.
        if (throttle.config().enabled() || l2_des > 0.0) {
            const std::uint64_t beats_per_tile =
                throttle.peekAllowance(horizon);
            const double allowed =
                static_cast<double>(beats_per_tile) *
                static_cast<double>(cfg_.dmaBeatBytes) *
                j.numTiles;
            if (l2_des > allowed) {
                e.throttleBound = true;
                const double scale =
                    l2_des > 0.0 ? allowed / l2_des : 0.0;
                l2_des = allowed;
                dram_des *= scale;
            }
        }
        e.l2Demand = l2_des;
        e.dramDemand = dram_des;
        entries.push_back(e);
    }
}

void
Soc::arbitrate(const std::vector<DemandEntry> &entries, Cycles horizon,
               ChannelGrants &g)
{
    std::vector<mem::MemRequest> &requests = requests_scratch_;
    requests.clear();
    for (const auto &e : entries) {
        mem::MemRequest r;
        r.id = e.id;
        r.dramBytes = e.dramDemand;
        r.l2Bytes = e.l2Demand;
        r.weight =
            std::max(1, hot_[static_cast<std::size_t>(e.id)].numTiles);
        requests.push_back(r);
    }

    mem::MemStepStats step;
    const std::vector<mem::MemGrant> &grants =
        mem_->arbitrate(requests, horizon, step);
    if (grants.size() != requests.size())
        fatal("memory model '%s' returned %zu grants for %zu "
              "requests (zero-demand requesters must get zero "
              "grants, not be dropped)",
              mem_->name(), grants.size(), requests.size());
    if (step.thrashed) {
        stats_.thrashQuanta++;
        stats_.thrashLostBytes += step.thrashLostBytes;
    }

    g.dram.clear();
    g.l2.clear();
    for (const auto &grant : grants) {
        g.dram.push_back(grant.dramBytes);
        g.l2.push_back(grant.l2Bytes);
    }
}

double
Soc::serviceRatio(const DemandEntry &e, double dram_grant,
                  double l2_grant) const
{
    // Service ratio: how much of the demanded issue rate the shared
    // channels actually granted.
    double service = 1.0;
    if (e.dramDemand > 1e-9)
        service = std::min(service, dram_grant / e.dramDemand);
    if (e.l2Demand > 1e-9)
        service = std::min(service, l2_grant / e.l2Demand);
    // The demand already includes the run-ahead margin; the balanced
    // rate is demand / runAhead, so a grant of demand/runAhead still
    // sustains full-speed execution.
    return std::min(1.0, service * std::max(1.0, cfg_.dmaRunAhead));
}

double
Soc::advanceEntries(const std::vector<DemandEntry> &entries,
                    const ChannelGrants &grants, Cycles horizon)
{
    double dram_used = 0.0;
    boundary_scratch_.clear();
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const int id = entries[i].id;
        Job &j = jobs_[static_cast<std::size_t>(id)];
        const JobHot &h = hot_[static_cast<std::size_t>(id)];
        if (entries[i].stalled) {
            j.stallCycles += std::min<Cycles>(
                horizon, h.stallRemaining(now_));
            j.throttle.advance(horizon, 0);
            continue;
        }
        const double service = serviceRatio(
            entries[i], grants.dram[i], grants.l2[i]);
        const AdvanceOutcome adv =
            advanceJob(id, horizon, service,
                       grants.dram[i], grants.l2[i]);

        j.dramBytesMoved +=
            static_cast<std::uint64_t>(adv.dramConsumed);
        j.l2BytesMoved +=
            static_cast<std::uint64_t>(adv.l2Consumed);
        dram_used += adv.dramConsumed;

        // Account the consumed traffic in the throttle engine
        // (per tile).
        const std::uint64_t beats = static_cast<std::uint64_t>(
            adv.l2Consumed /
            (static_cast<double>(cfg_.dmaBeatBytes) *
             std::max(1, h.numTiles)));
        j.throttle.advance(horizon, beats);

        if (adv.blockBoundary || adv.jobComplete)
            boundary_scratch_.push_back(
                {entries[i].id, adv.blockBoundary, adv.jobComplete});
    }
    return dram_used;
}

void
Soc::accountStep(Cycles step, double dram_used)
{
    now_ += step;
    stats_.quanta++;
    stats_.dramBytes += static_cast<std::uint64_t>(dram_used);
    dram_busy_cycles_ += dram_used / cfg_.dramBytesPerCycle;
    if (tele_sampler_ && now_ >= tele_sampler_->pending())
        sampleTelemetry();
}

void
Soc::setupTelemetry()
{
    tele_reg_ = std::make_unique<obs::Registry>();
    tele_running_ = &tele_reg_->gauge("running_jobs");
    tele_waiting_ = &tele_reg_->gauge("waiting_jobs");
    tele_free_tiles_ = &tele_reg_->gauge("free_tiles");
    tele_dram_mb_ = &tele_reg_->gauge("dram_mb");
    tele_done_ = &tele_reg_->counter("jobs_completed");
    tele_latency_ = &tele_reg_->histogram(
        "job_latency_cycles", {1e5, 1e6, 1e7, 1e8, 1e9});
    tele_sampler_ =
        std::make_unique<obs::Sampler>(*tele_reg_, cfg_.sampleEvery);
}

void
Soc::sampleTelemetry()
{
    // State is piecewise-constant between steps, so the post-step
    // values hold at every grid point the step crossed.
    tele_running_->set(static_cast<double>(running_ids_.size()));
    tele_waiting_->set(static_cast<double>(waiting_ids_.size()));
    tele_free_tiles_->set(static_cast<double>(freeTiles()));
    tele_dram_mb_->set(static_cast<double>(stats_.dramBytes) /
                       static_cast<double>(MiB));
    tele_sampler_->tick(now_);
}

void
Soc::dispatchBoundaries()
{
    bool completion = false;
    for (const auto &ev : boundary_scratch_) {
        if (ev.complete) {
            completeJob(ev.id);
            policy_.onJobComplete(*this, ev.id);
            completion = true;
        } else if (ev.blockBoundary) {
            trace_.record(
                now_, TraceEventKind::BlockBoundary, ev.id,
                static_cast<long long>(
                    hot_[static_cast<std::size_t>(ev.id)].blockIdx));
            policy_.onBlockBoundary(*this, ev.id);
        }
    }
    if (completion)
        invokePolicy(SchedEvent::JobCompletion);
}

// --- Kernels ----------------------------------------------------------

void
Soc::stepQuantum(Cycles horizon)
{
    if (!schedulingPoints(horizon))
        return;
    const std::vector<int> &running = running_ids_;

    Cycles step = cfg_.quantum;
    const Cycles na = nextArrivalCycle();
    if (na != kNoArrival && na > now_)
        step = std::min<Cycles>(step, na - now_);
    // Clamp to the periodic tick as well, so it fires at the
    // exact schedPeriod cadence instead of up to a quantum late.
    step = std::min<Cycles>(step, next_sched_tick_ - now_);
    // The horizon acts like one more pending arrival: a cluster
    // front-end may place a task on this SoC at that cycle.
    if (horizon != 0)
        step = std::min<Cycles>(step, horizon - now_);
    step = std::max<Cycles>(step, 1);

    computeDemands(running, step, entries_scratch_);
    arbitrate(entries_scratch_, step, grants_scratch_);
    const double dram_used =
        advanceEntries(entries_scratch_, grants_scratch_, step);
    accountStep(step, dram_used);
    dispatchBoundaries();
}

void
Soc::stepEvent(Cycles horizon)
{
    if (!schedulingPoints(horizon))
        return;
    const std::vector<int> &running = running_ids_;

    // Probe pass at quantum granularity: the demand-shape branch
    // and throttle binding match what the quantum kernel would
    // see in the next quantum, and stay constant until the next
    // event (demand rates are layer-invariant: every remaining
    // quantity shrinks by the same factor as the layer advances).
    computeDemands(running, cfg_.quantum, probe_scratch_);

    // Inline min-reduction over the candidate step-bounding times.
    // Every candidate is strictly greater than now_, and the
    // candidates are exactly the events the heap-based kernel used
    // to push, so `step` is bit-identical to the old top-of-heap
    // arithmetic.  Persistent events would not survive the grid
    // shift anyway: gridCeil() is now_-relative, and now_ lands
    // off-grid at raw arrival/tick steps.
    Cycles next = next_sched_tick_;
    const Cycles na = nextArrivalCycle();
    if (na != kNoArrival)
        next = std::min(next, na);
    if (horizon != 0)
        next = std::min(next, horizon);
    // A stateful memory model (e.g. banked row-locality) bounds the
    // step so its internal state is re-sampled often enough; the
    // stateless flat model returns 0 and adds no bound, keeping the
    // event stream identical to the pre-mem-subsystem kernel.
    const Cycles mem_change = mem_->cyclesUntilNextChange();
    if (mem_change > 0)
        next = std::min(next, gridCeil(now_ + mem_change));
    for (const DemandEntry &e : probe_scratch_) {
        const JobHot &j = hot_[static_cast<std::size_t>(e.id)];
        if (e.stalled) {
            next = std::min(next, gridCeil(j.stallUntil));
            continue;
        }
        // A layer can never finish before its full-service
        // remaining time, so step to the grid point strictly
        // *before* it: the tail quantum then replays the quantum
        // kernel's end-of-layer demand burst exactly, and no step
        // ever spans a demand-shape change.
        const double t = layerRemainingTime(j, 1.0);
        if (t < kInf) {
            const Cycles dt = static_cast<Cycles>(std::ceil(
                std::min(t, static_cast<double>(
                                cfg_.schedPeriod))));
            const Cycles floor_step = std::max<Cycles>(
                cfg_.quantum,
                (dt > 1 ? (dt - 1) / cfg_.quantum : 0) *
                    cfg_.quantum);
            next = std::min(next, now_ + floor_step);
        }
        if (e.throttleBound) {
            // A binding throttle re-opens at the engine's next
            // state change (window rollover / reconfig-stall
            // end); stop there so per-window pacing is not
            // smeared across a long step.
            const Cycles c =
                jobs_[static_cast<std::size_t>(e.id)]
                    .throttle.cyclesUntilNextChange();
            if (c > 0)
                next = std::min(next, gridCeil(now_ + c));
        }
    }

    const Cycles step = next - now_;

    // Tail steps (one per layer) degenerate to a single quantum,
    // where the probe already holds the exact demands.
    const std::vector<DemandEntry> *entries = &probe_scratch_;
    if (step != cfg_.quantum) {
        computeDemands(running, step, entries_scratch_);
        entries = &entries_scratch_;
    }
    arbitrate(*entries, step, grants_scratch_);
    const double dram_used =
        advanceEntries(*entries, grants_scratch_, step);
    accountStep(step, dram_used);
    dispatchBoundaries();
}

Cycles
Soc::gridCeil(Cycles t) const
{
    if (t <= now_)
        return now_ + cfg_.quantum;
    const Cycles k =
        (t - now_ + cfg_.quantum - 1) / cfg_.quantum;
    return now_ + k * cfg_.quantum;
}

void
Soc::beginRun(Cycles max_cycles)
{
    if (!sorted_)
        sortArrivals();
    run_max_cycles_ = max_cycles == 0 ? cfg_.maxCycles : max_cycles;
    if (!began_) {
        next_sched_tick_ = 0;
        began_ = true;
    }
    if (cfg_.sampleEvery > 0 && !tele_reg_)
        setupTelemetry();
    reserveRunState();
    debugCaptureCapacities();
}

void
Soc::reserveRunState()
{
    // Arena-style up-front sizing: after this point the hot loop
    // performs no vector growth (checked in debug builds).  The id
    // sets and results are bounded by the job count; the per-step
    // scratch by the running-set bound (one tile minimum per job).
    const std::size_t nj = jobs_.size();
    const std::size_t nr = static_cast<std::size_t>(
        std::max(1, cfg_.numTiles));
    waiting_ids_.reserve(nj);
    waiting_pos_.resize(nj, -1);
    running_ids_.reserve(nj);
    results_.reserve(nj);
    probe_scratch_.reserve(nr);
    entries_scratch_.reserve(nr);
    requests_scratch_.reserve(nr);
    grants_scratch_.dram.reserve(nr);
    grants_scratch_.l2.reserve(nr);
    boundary_scratch_.reserve(nr);
}

void
Soc::debugCaptureCapacities()
{
#ifndef NDEBUG
    debug_caps_ = {waiting_ids_.capacity(), running_ids_.capacity(),
                   results_.capacity(), probe_scratch_.capacity(),
                   entries_scratch_.capacity(),
                   requests_scratch_.capacity(),
                   grants_scratch_.dram.capacity(),
                   grants_scratch_.l2.capacity(),
                   boundary_scratch_.capacity()};
#endif
}

void
Soc::debugCheckNoRealloc() const
{
#ifndef NDEBUG
    const std::vector<std::size_t> caps = {
        waiting_ids_.capacity(), running_ids_.capacity(),
        results_.capacity(), probe_scratch_.capacity(),
        entries_scratch_.capacity(), requests_scratch_.capacity(),
        grants_scratch_.dram.capacity(),
        grants_scratch_.l2.capacity(), boundary_scratch_.capacity()};
    if (caps != debug_caps_)
        panic("hot-loop vector reallocated during run "
              "(reserveRunState under-sized a buffer)");
#endif
}

bool
Soc::stepOnce(Cycles horizon)
{
    if (!began_)
        panic("stepOnce before beginRun");
    if (allDone())
        return false;
    if (horizon != 0 && now_ >= horizon)
        panic("stepOnce: now=%llu is at/past horizon %llu",
              static_cast<unsigned long long>(now_),
              static_cast<unsigned long long>(horizon));
    if (now_ > run_max_cycles_)
        fatal("simulation exceeded %llu cycles; policy deadlock?",
              static_cast<unsigned long long>(run_max_cycles_));

    if (cfg_.kernel == SimKernel::Event)
        stepEvent(horizon);
    else
        stepQuantum(horizon);
    return !allDone();
}

void
Soc::advanceTo(Cycles horizon)
{
    // stepOnce treats horizon 0 as "unbounded", so the all-ones
    // kNoHorizon sentinel is what keeps this a single code path: it
    // flows through every min() clamp without ever binding (now()
    // is bounded by run_max_cycles_ ~ 1e12), which is bit-identical
    // to the unbounded stepOnce(0) mode the old drain loop used.
    while (!allDone() && now_ < horizon)
        stepOnce(horizon);
}

void
Soc::injectJob(const JobSpec &spec)
{
    if (!began_)
        panic("injectJob before beginRun (use addJob)");
    if (spec.model == nullptr)
        fatal("job %d has no model", spec.id);
    if (spec.id != static_cast<int>(jobs_.size()))
        fatal("job ids must be dense and in insertion order "
              "(got %d, expected %zu)", spec.id, jobs_.size());
    if (spec.dispatch < now_)
        fatal("injectJob(%d): dispatch %llu is before now %llu",
              spec.id, static_cast<unsigned long long>(spec.dispatch),
              static_cast<unsigned long long>(now_));
    const Cycles pending = nextArrivalCycle();
    if (pending != kNoArrival &&
        spec.dispatch < jobs_[arrival_order_.back()].spec.dispatch)
        fatal("injectJob(%d): dispatch order violated", spec.id);

    Job job;
    job.spec = spec;
    jobs_.push_back(std::move(job));
    hot_.emplace_back();
    // Injections arrive in nondecreasing dispatch order, so the
    // sorted arrival order is maintained by appending.
    arrival_order_.push_back(spec.id);
    // The job count grew: re-derive the arena bounds (capacity only
    // ever grows, so steady-state injections are no-ops here).
    reserveRunState();
    debugCaptureCapacities();
}

void
Soc::finishRun()
{
    debugCheckNoRealloc();
    stats_.cyclesSimulated = now_;
    stats_.memTraffic = mem_->traffic();
    stats_.l2Bytes = 0;
    for (const auto &j : jobs_)
        stats_.l2Bytes += j.l2BytesMoved;
    stats_.dramBusyFraction =
        now_ > 0 ? dram_busy_cycles_ / static_cast<double>(now_) : 0.0;
}

void
Soc::run(Cycles max_cycles)
{
    beginRun(max_cycles);
    while (stepOnce()) {
    }
    finishRun();
}

} // namespace moca::sim
