#include "sim/traffic_model.h"

#include <algorithm>

#include "common/log.h"

namespace moca::sim {

namespace {

/** Streaming traffic options for the two loop orders of the GEMM. */
struct StreamPlan
{
    std::uint64_t streamBytes = 0; ///< Total streamed bytes (L2 side).
    std::uint64_t reloaded = 0;    ///< Bytes re-fetched beyond 1 pass.
    std::uint64_t residentOperand = 0; ///< Size of the held operand.
};

StreamPlan
planGemmStreaming(std::uint64_t weight_bytes, std::uint64_t input_bytes,
                  const SocConfig &cfg)
{
    // Half the scratchpad holds the resident operand; the other half
    // double-buffers the streamed one.
    const std::uint64_t sp_half = cfg.scratchpadBytes / 2;

    // Option A: weights resident in chunks, inputs streamed once per
    // weight chunk.
    const std::uint64_t w_chunks =
        std::max<std::uint64_t>(1, ceilDiv(weight_bytes, sp_half));
    const std::uint64_t opt_a = weight_bytes + input_bytes * w_chunks;

    // Option B: inputs resident in chunks, weights streamed once per
    // input chunk.
    const std::uint64_t i_chunks =
        std::max<std::uint64_t>(1, ceilDiv(input_bytes, sp_half));
    const std::uint64_t opt_b = input_bytes + weight_bytes * i_chunks;

    StreamPlan plan;
    if (opt_a <= opt_b) {
        plan.streamBytes = opt_a;
        plan.reloaded = input_bytes * (w_chunks - 1);
        plan.residentOperand = weight_bytes;
    } else {
        plan.streamBytes = opt_b;
        plan.reloaded = weight_bytes * (i_chunks - 1);
        plan.residentOperand = input_bytes;
    }
    return plan;
}

} // anonymous namespace

std::uint64_t
streamReloadFactor(const dnn::Layer &layer, const SocConfig &cfg)
{
    if (layer.layerClass() == dnn::LayerClass::Mem)
        return 1;
    const std::uint64_t sp_half = cfg.scratchpadBytes / 2;
    const std::uint64_t w = layer.weightBytes();
    const std::uint64_t in = layer.inputBytes();
    const std::uint64_t w_chunks =
        std::max<std::uint64_t>(1, ceilDiv(w, sp_half));
    const std::uint64_t i_chunks =
        std::max<std::uint64_t>(1, ceilDiv(in, sp_half));
    // Reload factor of whichever loop order streams fewer bytes.
    const std::uint64_t opt_a = w + in * w_chunks;
    const std::uint64_t opt_b = in + w * i_chunks;
    return opt_a <= opt_b ? w_chunks : i_chunks;
}

LayerTraffic
layerTraffic(const dnn::Layer &layer, int num_tiles,
             const SocConfig &cfg, std::uint64_t effective_cache_bytes)
{
    if (num_tiles < 1)
        panic("layerTraffic with %d tiles", num_tiles);

    LayerTraffic t;
    const std::uint64_t in = layer.inputBytes();
    const std::uint64_t out = layer.outputBytes();
    const std::uint64_t w = layer.weightBytes();
    const std::uint64_t bias = layer.biasBytes();

    if (layer.layerClass() == dnn::LayerClass::Mem) {
        // MEM layers stream input(s) and write output; no weights.
        t.l2Bytes = in + out;
        // Outputs are written through; at least one input operand
        // (the residual saved many layers earlier, or an evicted
        // tensor) comes from DRAM when it no longer fits in the
        // job's L2 share.
        t.dramBytes = out;
        if (layer.kind == dnn::LayerKind::Add) {
            // The second (older) operand has been evicted unless the
            // cache comfortably holds both operands.
            const std::uint64_t operand = in / 2;
            if (in + out > effective_cache_bytes)
                t.dramBytes += operand;
        } else if (in > effective_cache_bytes) {
            t.dramBytes += in;
        }
        return t;
    }

    const StreamPlan plan = planGemmStreaming(w, in, cfg);

    t.l2Bytes = plan.streamBytes + out + bias;

    // DRAM side: weights and biases have no producer on chip and are
    // fetched from DRAM; outputs are written through.
    t.dramBytes = w + bias + out;

    // Input activations were produced by the previous layer into L2;
    // they hit unless the tensor exceeds the job's effective share.
    if (in > effective_cache_bytes)
        t.dramBytes += in;

    // Re-fetched streaming passes hit L2 only if the streamed operand
    // survives there between passes.
    if (plan.reloaded > 0) {
        const std::uint64_t streamed_operand =
            plan.residentOperand == w ? in : w;
        if (streamed_operand > effective_cache_bytes)
            t.dramBytes += plan.reloaded;
    }

    // Multi-tile jobs duplicate the shared operand's fetches into
    // each tile's scratchpad; the duplicates are L2 hits (the first
    // tile's fetch warms the cache) so only l2Bytes grows.
    if (num_tiles > 1) {
        const std::uint64_t dup =
            plan.residentOperand *
            static_cast<std::uint64_t>(num_tiles - 1);
        t.l2Bytes += dup;
    }

    return t;
}

} // namespace moca::sim
