/**
 * @file
 * Next-event support for the SoC simulator's event kernel
 * (SocConfig::kernel == SimKernel::Event): a deterministic min-heap of
 * the moments at which the simulated system's piecewise-constant state
 * can change — the next job arrival, the next periodic scheduler tick,
 * a job's migration/preemption stall expiring, a running job finishing
 * its current layer (and possibly crossing a layer-block boundary),
 * and a binding MoCA throttle window rolling over.
 *
 * Between consecutive events the running set, the arbiters' grants,
 * and every job's demand rates are constant, so the kernel advances
 * time directly to the earliest event instead of stepping fixed
 * quanta.  Ties break on (cycle, kind, job id) so the pop order — and
 * therefore the simulation — is fully deterministic.
 */

#ifndef MOCA_SIM_EVENT_QUEUE_H
#define MOCA_SIM_EVENT_QUEUE_H

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace moca::sim {

/** What kind of state change an event marks. */
enum class SimEventKind
{
    Arrival,         ///< A queued job's dispatch cycle.
    SchedTick,       ///< The periodic scheduler tick.
    StallExpiry,     ///< A job's migration/resume stall ends.
    LayerCompletion, ///< A running job finishes its current layer.
    ThrottleWindow,  ///< A binding throttle window rolls over.
    MemStateChange,  ///< A stateful memory model wants re-sampling.
};

/** Printable event-kind name. */
const char *simEventKindName(SimEventKind kind);

/** One pending state change. */
struct SimEvent
{
    Cycles at = 0;
    SimEventKind kind = SimEventKind::Arrival;
    int jobId = -1; ///< Owning job for per-job events; -1 otherwise.
};

/** Deterministic strict-weak order: cycle, then kind, then job id. */
bool operator<(const SimEvent &a, const SimEvent &b);

/** Min-heap of pending events, ordered by operator<. */
class EventQueue
{
  public:
    void clear() { heap_.clear(); }
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    void push(Cycles at, SimEventKind kind, int job_id = -1);

    /** Earliest pending event; panics when empty. */
    const SimEvent &top() const;

    /** Remove and return the earliest pending event. */
    SimEvent pop();

  private:
    std::vector<SimEvent> heap_;
};

} // namespace moca::sim

#endif // MOCA_SIM_EVENT_QUEUE_H
