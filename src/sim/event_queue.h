/**
 * @file
 * Next-event support for the SoC simulator's event kernel
 * (SocConfig::kernel == SimKernel::Event): a deterministic priority
 * queue of the moments at which the simulated system's
 * piecewise-constant state can change — the next job arrival, the next
 * periodic scheduler tick, a job's migration/preemption stall expiring,
 * a running job finishing its current layer (and possibly crossing a
 * layer-block boundary), and a binding MoCA throttle window rolling
 * over.
 *
 * The implementation is a *calendar queue* keyed on the quantum grid:
 * an array of day buckets of `bucketWidth` cycles (the scheduling
 * quantum), indexed by `(at / width) mod nbuckets`.  Push appends to
 * the target bucket in O(1); pop scans the current day's bucket for
 * the earliest entry and advances day by day, falling back to a
 * global min-scan after a whole calendar "year" of empty days, so a
 * sparse far-future tail cannot degrade pop to O(days).  Amortized
 * push/pop is O(1) when events cluster within a few quanta of now —
 * exactly the event kernel's behaviour, where every per-job event
 * lands on the next few grid points.
 *
 * Superseded events (a stall cut short by a resize, a layer
 * completion invalidated by a throttle reprogram, ...) are *lazily
 * invalidated*: `invalidate(kind, job)` bumps a per-(kind, job)
 * generation counter in O(1) and stale entries are skipped and
 * reclaimed when their bucket is next scanned.  `size()` counts live
 * events only.
 *
 * Ties break on (cycle, kind, job id) so the pop order — and
 * therefore any simulation driven by it — is fully deterministic and
 * identical to the reference binary heap's.
 */

#ifndef MOCA_SIM_EVENT_QUEUE_H
#define MOCA_SIM_EVENT_QUEUE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace moca::sim {

/** What kind of state change an event marks. */
enum class SimEventKind
{
    Arrival,         ///< A queued job's dispatch cycle.
    SchedTick,       ///< The periodic scheduler tick.
    StallExpiry,     ///< A job's migration/resume stall ends.
    LayerCompletion, ///< A running job finishes its current layer.
    ThrottleWindow,  ///< A binding throttle window rolls over.
    MemStateChange,  ///< A stateful memory model wants re-sampling.
};

/** Number of SimEventKind values (generation-table stride). */
constexpr std::size_t kNumSimEventKinds = 6;

/** Printable event-kind name. */
const char *simEventKindName(SimEventKind kind);

/** One pending state change. */
struct SimEvent
{
    Cycles at = 0;
    SimEventKind kind = SimEventKind::Arrival;
    int jobId = -1; ///< Owning job for per-job events; -1 otherwise.
};

/** Deterministic strict-weak order: cycle, then kind, then job id. */
bool operator<(const SimEvent &a, const SimEvent &b);

/** Calendar queue of pending events, ordered by operator<. */
class EventQueue
{
  public:
    /** @param bucket_width day width in cycles; the natural choice
     *  is the scheduling quantum, so each grid point owns a day. */
    explicit EventQueue(Cycles bucket_width = 512);

    void clear();
    bool empty() const { return live_ == 0; }
    /** Live (non-invalidated) pending events. */
    std::size_t size() const { return live_; }

    void push(Cycles at, SimEventKind kind, int job_id = -1);

    /** Earliest live pending event; panics when empty. */
    const SimEvent &top() const;

    /** Remove and return the earliest live pending event. */
    SimEvent pop();

    /**
     * Lazily drop every pending (kind, job_id) event: O(1) now, the
     * stale entries are reclaimed when their bucket is next touched.
     * A later push of the same (kind, job_id) is live again.
     */
    void invalidate(SimEventKind kind, int job_id = -1);

    /** Bucket count (test/bench introspection). */
    std::size_t buckets() const { return buckets_.size(); }

  private:
    struct Entry
    {
        SimEvent ev;
        std::uint32_t gen = 0; ///< Generation at push time.
    };

    /** Per-(job, kind) generation + live-pending bookkeeping; slot 0
     *  is jobId -1 (global events), slot j+1 is job j. */
    struct SlotState
    {
        std::array<std::uint32_t, kNumSimEventKinds> gen{};
        std::array<std::uint32_t, kNumSimEventKinds> pending{};
    };

    std::size_t bucketOf(Cycles at) const;
    SlotState &slot(int job_id);
    bool isStale(const Entry &e) const;
    /** Locate the earliest live entry, pruning stale entries and
     *  advancing cur_day_; caches the position for top()/pop(). */
    void settle() const;
    /** Double the bucket count and redistribute live entries. */
    void grow();

    Cycles width_;
    // detlint: allow(R4) per-Soc queue; a Soc runs on one thread
    mutable std::vector<std::vector<Entry>> buckets_;
    mutable std::uint64_t cur_day_ = 0;
    std::size_t live_ = 0;
    std::vector<SlotState> slots_;

    // settle() cache: position of the current minimum.
    // detlint: allow(R4) per-Soc queue; a Soc runs on one thread
    mutable bool top_valid_ = false;
    mutable std::size_t top_bucket_ = 0;
    mutable std::size_t top_pos_ = 0;
};

} // namespace moca::sim

#endif // MOCA_SIM_EVENT_QUEUE_H
