/**
 * @file
 * Job state tracked by the SoC simulator.  A *job* is one dispatched
 * inference request: a model instance with a user priority and an SLA
 * (QoS) target.  Jobs wait in the task queue, run on a set of tiles,
 * may be paused (PREMA preemption) or stalled (thread migration,
 * MoCA reconfiguration), and finish with a measured latency.
 */

#ifndef MOCA_SIM_JOB_H
#define MOCA_SIM_JOB_H

#include <cstdint>

#include "common/units.h"
#include "dnn/model.h"
#include "moca/hw/throttle_engine.h"

namespace moca::sim {

/** Immutable description of a dispatched inference request. */
struct JobSpec
{
    int id = -1;
    const dnn::Model *model = nullptr;
    Cycles dispatch = 0;   ///< Cycle the request enters the task queue.
    int priority = 0;      ///< User-defined static priority, 0..11.
    Cycles slaLatency = 0; ///< QoS target latency (from dispatch).
};

/** Lifecycle of a job. */
enum class JobState
{
    NotArrived, ///< dispatch cycle is still in the future.
    Waiting,    ///< In the task queue (dispatched, not yet running).
    Running,    ///< Executing on >= 1 tiles.
    Paused,     ///< Preempted with saved progress (PREMA).
    Done,
};

/** Execution state of the job's current layer. */
struct LayerExecState
{
    double computeRem = 0.0; ///< Remaining compute cycles.
    double l2Rem = 0.0;      ///< Remaining L2-side bytes.
    double dramRem = 0.0;    ///< Remaining DRAM-side bytes.
    bool valid = false;
};

/**
 * Hot per-job execution state, read and written on every simulation
 * step.  The Soc stores these in a dense array parallel to the cold
 * Job records, so the per-step demand/advance scans touch ~64
 * contiguous bytes per job instead of dragging the full record (spec,
 * throttle engine, statistics) through the cache.
 */
struct JobHot
{
    JobState state = JobState::NotArrived;
    int numTiles = 0;        ///< Tiles currently allocated.
    std::size_t layerIdx = 0;
    std::size_t blockIdx = 0;
    LayerExecState exec;
    Cycles stallUntil = 0;   ///< Migration/preemption stall deadline.

    /** Cycles of migration/resume stall left at `now` (0 = none). */
    Cycles stallRemaining(Cycles now) const
    {
        return stallUntil > now ? stallUntil - now : 0;
    }
};

/**
 * Cold per-job bookkeeping inside the simulator: the immutable spec,
 * the throttle engine (touched only at reconfigurations and window
 * accounting), and lifetime statistics.  Per-step execution state
 * lives in the Soc's JobHot array; read it through Soc::jobState,
 * Soc::jobTiles, Soc::jobLayer, and Soc::jobStallUntil.
 */
struct Job
{
    JobSpec spec;
    bool started = false;
    Cycles firstStart = 0;
    Cycles finish = 0;

    /** Per-tile MoCA throttle engine (all tiles configured alike). */
    hw::ThrottleEngine throttle;

    // --- statistics ---------------------------------------------------
    std::uint64_t dramBytesMoved = 0;
    std::uint64_t l2BytesMoved = 0;
    Cycles stallCycles = 0;
    int migrations = 0;
    int preemptions = 0;
};

/** Result record for one finished job. */
struct JobResult
{
    JobSpec spec;
    Cycles firstStart = 0;
    Cycles finish = 0;
    std::uint64_t dramBytesMoved = 0;
    std::uint64_t l2BytesMoved = 0;
    Cycles stallCycles = 0;
    int migrations = 0;
    int preemptions = 0;
    int throttleReconfigs = 0;

    /** End-to-end latency: queue wait + runtime (paper Sec. IV-C). */
    Cycles latency() const { return finish - spec.dispatch; }

    /** True when the job met its SLA target. */
    bool slaMet() const { return latency() <= spec.slaLatency; }
};

} // namespace moca::sim

#endif // MOCA_SIM_JOB_H
