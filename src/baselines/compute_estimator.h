/**
 * @file
 * Compute-oriented latency estimation, as used by the prior
 * multi-tenant schedulers the paper compares against (PREMA [9],
 * Planaria [18]): remaining latency is the sum of systolic-array
 * compute cycles, with no model of the shared memory system.  The
 * paper's critique ("compute-oriented latency estimation in prior
 * multi-tenant solutions") is precisely that this underestimates
 * memory-bound work — which is why the baselines' schedulers make
 * memory-oblivious decisions here.
 */

#ifndef MOCA_BASELINES_COMPUTE_ESTIMATOR_H
#define MOCA_BASELINES_COMPUTE_ESTIMATOR_H

#include "dnn/model.h"
#include "sim/config.h"

namespace moca::baselines {

/** Compute-only cycle estimate for layers [from_layer, end) on
 *  `num_tiles` tiles. */
double computeOnlyEstimate(const dnn::Model &model,
                           std::size_t from_layer, int num_tiles,
                           const sim::SocConfig &cfg);

/** Whole-model compute-only estimate. */
double computeOnlyEstimate(const dnn::Model &model, int num_tiles,
                           const sim::SocConfig &cfg);

} // namespace moca::baselines

#endif // MOCA_BASELINES_COMPUTE_ESTIMATOR_H
