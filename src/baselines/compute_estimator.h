/**
 * @file
 * Compute-oriented latency estimation, as used by the prior
 * multi-tenant schedulers the paper compares against (PREMA [9],
 * Planaria [18]): remaining latency is the sum of systolic-array
 * compute cycles, with no model of the shared memory system.  The
 * paper's critique ("compute-oriented latency estimation in prior
 * multi-tenant solutions") is precisely that this underestimates
 * memory-bound work — which is why the baselines' schedulers make
 * memory-oblivious decisions here.
 */

#ifndef MOCA_BASELINES_COMPUTE_ESTIMATOR_H
#define MOCA_BASELINES_COMPUTE_ESTIMATOR_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dnn/model.h"
#include "sim/config.h"

namespace moca::baselines {

/** Compute-only cycle estimate for layers [from_layer, end) on
 *  `num_tiles` tiles. */
double computeOnlyEstimate(const dnn::Model &model,
                           std::size_t from_layer, int num_tiles,
                           const sim::SocConfig &cfg);

/** Whole-model compute-only estimate. */
double computeOnlyEstimate(const dnn::Model &model, int num_tiles,
                           const sim::SocConfig &cfg);

/**
 * Memoized computeOnlyEstimate for a fixed SocConfig: the baselines
 * re-evaluate remaining-work estimates for every waiting job at every
 * scheduling point, which is O(layers) each time uncached.  Suffix
 * sums are accumulated in the same forward layer order as the
 * uncached loop, so results are bit-identical.
 */
class ComputeEstimateCache
{
  public:
    explicit ComputeEstimateCache(const sim::SocConfig &cfg)
        : cfg_(cfg)
    {
    }

    /** Cached computeOnlyEstimate(model, from_layer, num_tiles). */
    double remaining(const dnn::Model &model, std::size_t from_layer,
                     int num_tiles) const;

  private:
    sim::SocConfig cfg_;
    /** (model uid, tiles) -> suffix[i] = estimate from layer i.
     *  Audited for R1: lookup-only (find/emplace), never iterated,
     *  so the unordered layout cannot feed a decision. */
    // detlint: allow(R4) per-worker instance; lookup-only memo
    mutable std::unordered_map<std::uint64_t, std::vector<double>>
        suffix_;
};

} // namespace moca::baselines

#endif // MOCA_BASELINES_COMPUTE_ESTIMATOR_H
