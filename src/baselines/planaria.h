/**
 * @file
 * Planaria baseline [18]: dynamic architecture *fission* — the tile
 * array is spatially repartitioned among co-located jobs at runtime.
 * On every arrival and completion the policy recomputes each job's
 * tile allocation from its deadline pressure (compute-only remaining
 * work over slack, scaled by priority); allocation changes are
 * applied at the affected job's next layer-block boundary and charge
 * the thread-migration penalty (~1 M cycles, paper Sec. V-A).
 *
 * Two deliberate omissions mirror the paper's critique: the scheduler
 * is memory-oblivious (compute-only estimates; no pairing of
 * memory-bound with compute-bound jobs) and there is no memory-access
 * regulation whatsoever.
 */

#ifndef MOCA_BASELINES_PLANARIA_H
#define MOCA_BASELINES_PLANARIA_H

#include <map>
#include <string>

#include "baselines/compute_estimator.h"
#include "sim/policy.h"
#include "sim/soc.h"

namespace moca::baselines {

/** Planaria tuning knobs. */
struct PlanariaConfig
{
    /** Smallest pod a job can be fissioned down to, in tiles. */
    int minTiles = 1;

    /** Cap on concurrently co-located jobs. */
    int maxConcurrent = 8;

    /** Uniform spec-string parameter surface (exp::PolicyRegistry).
     *  @return false for unknown keys; fatal on malformed values. */
    bool applyParam(const std::string &key, const std::string &value);
};

/** Dynamic compute-fission baseline policy. */
class PlanariaPolicy : public sim::Policy
{
  public:
    explicit PlanariaPolicy(const sim::SocConfig &soc_cfg,
                            const PlanariaConfig &cfg = PlanariaConfig());

    const char *name() const override { return "planaria"; }

    void schedule(sim::Soc &soc, sim::SchedEvent event) override;
    void onBlockBoundary(sim::Soc &soc, int id) override;
    void onJobComplete(sim::Soc &soc, int id) override;

  private:
    PlanariaConfig cfg_;
    sim::SocConfig socCfg_;
    ComputeEstimateCache estCache_;

    /** Target allocation decided by the last fission; applied lazily
     *  at each job's next block boundary. */
    std::map<int, int> desired_;

    /** Deadline-pressure weight of a job. */
    double demandWeight(const sim::Soc &soc, int id) const;

    /** Recompute the fission targets for running + admissible jobs. */
    void refission(sim::Soc &soc);

    /** Start waiting jobs that have a target and fit in free tiles. */
    void admit(sim::Soc &soc);
};

} // namespace moca::baselines

#endif // MOCA_BASELINES_PLANARIA_H
