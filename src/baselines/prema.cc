#include "baselines/prema.h"

#include <algorithm>

#include "baselines/compute_estimator.h"
#include "common/argparse.h"
#include "common/log.h"

namespace moca::baselines {

bool
PremaConfig::applyParam(const std::string &key,
                        const std::string &value)
{
    if (key == "preempt_margin") {
        preemptMargin = parseDoubleValue("prema:" + key, value);
        return true;
    }
    return false;
}

PremaPolicy::PremaPolicy(const sim::SocConfig &soc_cfg,
                         const PremaConfig &cfg)
    : cfg_(cfg), socCfg_(soc_cfg), estCache_(soc_cfg)
{
}

Cycles
PremaPolicy::checkpointCycles(const sim::SocConfig &cfg)
{
    // Drain + restore every tile's scratchpad and accumulator through
    // DRAM (the shared path all tiles contend on).
    const double bytes = 2.0 *
        static_cast<double>(cfg.scratchpadBytes +
                            cfg.accumulatorBytes) *
        cfg.numTiles;
    return static_cast<Cycles>(bytes / cfg.dramBytesPerCycle);
}

double
PremaPolicy::token(const sim::Soc &soc, int id) const
{
    // PREMA's token: static priority escalated by waiting time
    // normalized to the job's (compute-oriented) estimated runtime.
    const sim::JobSpec &spec = soc.job(id).spec;
    const double wait = static_cast<double>(
        soc.now() >= spec.dispatch ? soc.now() - spec.dispatch : 0);
    const double est = std::max(1.0,
        estCache_.remaining(*spec.model, soc.jobLayer(id),
                            socCfg_.numTiles));
    return static_cast<double>(spec.priority) + wait / est;
}

int
PremaPolicy::bestCandidate(const sim::Soc &soc) const
{
    int best = -1;
    double best_token = -1.0;
    for (int id : soc.waitingJobs()) {
        const double t = token(soc, id);
        if (t > best_token) {
            best_token = t;
            best = id;
        }
    }
    return best;
}

void
PremaPolicy::startNext(sim::Soc &soc)
{
    const int id = bestCandidate(soc);
    if (id < 0)
        return;
    // Restoring a preempted job refills its checkpointed on-chip
    // state; a fresh job starts clean.
    const Cycles penalty = soc.jobState(id) == sim::JobState::Paused
        ? checkpointCycles(socCfg_) : 0;
    soc.startJob(id, socCfg_.numTiles, penalty);
}

void
PremaPolicy::schedule(sim::Soc &soc, sim::SchedEvent)
{
    if (soc.runningJobs().empty())
        startNext(soc);
}

void
PremaPolicy::onBlockBoundary(sim::Soc &soc, int id)
{
    // Preemption check: a waiting job whose token exceeds the
    // runner's by the margin takes over at this block boundary,
    // charging the checkpoint drain to the preempted job.
    const int challenger = bestCandidate(soc);
    if (challenger < 0)
        return;
    const double challenger_token = token(soc, challenger);
    const double runner_token = token(soc, id);
    if (challenger_token > runner_token + cfg_.preemptMargin) {
        soc.pauseJob(id);
        const Cycles penalty = checkpointCycles(socCfg_) +
            (soc.jobState(challenger) == sim::JobState::Paused
                 ? checkpointCycles(socCfg_) : 0);
        soc.startJob(challenger, socCfg_.numTiles, penalty);
    }
}

} // namespace moca::baselines
