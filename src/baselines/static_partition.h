/**
 * @file
 * Static spatial-partitioning baseline (paper Sec. IV-D baseline 2):
 * the tile array is split into fixed equal partitions at boot; each
 * partition runs one job at a time, jobs are admitted in
 * priority-plus-age order, and nothing is ever repartitioned,
 * throttled, or preempted at runtime.
 */

#ifndef MOCA_BASELINES_STATIC_PARTITION_H
#define MOCA_BASELINES_STATIC_PARTITION_H

#include <string>

#include "baselines/compute_estimator.h"
#include "sim/policy.h"
#include "sim/soc.h"

namespace moca::baselines {

/** Static-partition tuning knobs. */
struct StaticPartitionConfig
{
    /** Number of fixed partitions (tiles per slot =
     *  numTiles / partitions). */
    int partitions = 4;

    /** Uniform spec-string parameter surface (exp::PolicyRegistry).
     *  @return false for unknown keys; fatal on malformed values. */
    bool applyParam(const std::string &key, const std::string &value);
};

/** Fixed spatial-partitioning baseline policy. */
class StaticPartitionPolicy : public sim::Policy
{
  public:
    explicit StaticPartitionPolicy(
        const sim::SocConfig &soc_cfg,
        const StaticPartitionConfig &cfg = StaticPartitionConfig());

    const char *name() const override { return "static"; }

    void schedule(sim::Soc &soc, sim::SchedEvent event) override;

  private:
    StaticPartitionConfig cfg_;
    sim::SocConfig socCfg_;
    ComputeEstimateCache estCache_;

    int tilesPerSlot() const;
};

} // namespace moca::baselines

#endif // MOCA_BASELINES_STATIC_PARTITION_H
