/**
 * @file
 * PREMA baseline [9]: predictive multi-task scheduling on a
 * *time-multiplexed* accelerator.  One job at a time owns every tile;
 * a token-based priority scheme (static priority escalated by
 * normalized waiting time) picks the next job, and a higher-token
 * arrival may preempt the current job at a layer-block boundary.
 * Preemption drains and later restores the on-chip state
 * (scratchpads + accumulators) through DRAM, which we charge as a
 * checkpoint penalty derived from the SoC configuration.
 */

#ifndef MOCA_BASELINES_PREMA_H
#define MOCA_BASELINES_PREMA_H

#include <string>

#include "baselines/compute_estimator.h"
#include "sim/policy.h"
#include "sim/soc.h"

namespace moca::baselines {

/** PREMA tuning knobs. */
struct PremaConfig
{
    /** Token advantage a challenger needs to preempt the runner. */
    double preemptMargin = 2.0;

    /** Uniform spec-string parameter surface (exp::PolicyRegistry).
     *  @return false for unknown keys; fatal on malformed values. */
    bool applyParam(const std::string &key, const std::string &value);
};

/** Temporal-multiplexing baseline policy. */
class PremaPolicy : public sim::Policy
{
  public:
    explicit PremaPolicy(const sim::SocConfig &soc_cfg,
                         const PremaConfig &cfg = PremaConfig());

    const char *name() const override { return "prema"; }

    void schedule(sim::Soc &soc, sim::SchedEvent event) override;
    void onBlockBoundary(sim::Soc &soc, int id) override;

    /** Checkpoint (drain + restore) cost for one preemption. */
    static Cycles checkpointCycles(const sim::SocConfig &cfg);

  private:
    PremaConfig cfg_;
    sim::SocConfig socCfg_;
    ComputeEstimateCache estCache_;

    double token(const sim::Soc &soc, int id) const;
    int bestCandidate(const sim::Soc &soc) const;
    void startNext(sim::Soc &soc);
};

} // namespace moca::baselines

#endif // MOCA_BASELINES_PREMA_H
