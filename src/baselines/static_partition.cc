#include "baselines/static_partition.h"

#include <algorithm>

#include "baselines/compute_estimator.h"
#include "common/argparse.h"
#include "common/log.h"

namespace moca::baselines {

bool
StaticPartitionConfig::applyParam(const std::string &key,
                                  const std::string &value)
{
    if (key == "partitions") {
        partitions = static_cast<int>(
            parseIntValue("static:" + key, value));
        return true;
    }
    return false;
}

StaticPartitionPolicy::StaticPartitionPolicy(
    const sim::SocConfig &soc_cfg, const StaticPartitionConfig &cfg)
    : cfg_(cfg), socCfg_(soc_cfg), estCache_(soc_cfg)
{
    if (cfg_.partitions < 1 || cfg_.partitions > soc_cfg.numTiles)
        fatal("static partitioning: partitions must be in "
              "[1, numTiles]");
}

int
StaticPartitionPolicy::tilesPerSlot() const
{
    return std::max(1, socCfg_.numTiles / cfg_.partitions);
}

void
StaticPartitionPolicy::schedule(sim::Soc &soc, sim::SchedEvent)
{
    const int per_slot = tilesPerSlot();

    while (soc.freeTiles() >= per_slot) {
        // Admit the waiting job with the best priority-plus-age
        // score (ties broken by dispatch order).
        int best = -1;
        double best_score = -1.0;
        for (int id : soc.waitingJobs()) {
            const sim::Job &j = soc.job(id);
            const double wait = static_cast<double>(
                soc.now() >= j.spec.dispatch
                    ? soc.now() - j.spec.dispatch : 0);
            const double est = std::max(1.0,
                estCache_.remaining(*j.spec.model, 0, per_slot));
            const double score =
                static_cast<double>(j.spec.priority) + wait / est;
            if (score > best_score) {
                best_score = score;
                best = id;
            }
        }
        if (best < 0)
            break;
        soc.startJob(best, per_slot);
    }
}

} // namespace moca::baselines
