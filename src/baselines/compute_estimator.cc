#include "baselines/compute_estimator.h"

#include "sim/compute_model.h"

namespace moca::baselines {

double
computeOnlyEstimate(const dnn::Model &model, std::size_t from_layer,
                    int num_tiles, const sim::SocConfig &cfg)
{
    double total = 0.0;
    for (std::size_t i = from_layer; i < model.numLayers(); ++i)
        total += static_cast<double>(
            sim::computeCycles(model.layer(i), num_tiles, cfg));
    return total;
}

double
computeOnlyEstimate(const dnn::Model &model, int num_tiles,
                    const sim::SocConfig &cfg)
{
    return computeOnlyEstimate(model, 0, num_tiles, cfg);
}

} // namespace moca::baselines
