#include "baselines/compute_estimator.h"

#include "sim/compute_model.h"

namespace moca::baselines {

double
computeOnlyEstimate(const dnn::Model &model, std::size_t from_layer,
                    int num_tiles, const sim::SocConfig &cfg)
{
    double total = 0.0;
    for (std::size_t i = from_layer; i < model.numLayers(); ++i)
        total += static_cast<double>(
            sim::computeCycles(model.layer(i), num_tiles, cfg));
    return total;
}

double
computeOnlyEstimate(const dnn::Model &model, int num_tiles,
                    const sim::SocConfig &cfg)
{
    return computeOnlyEstimate(model, 0, num_tiles, cfg);
}

double
ComputeEstimateCache::remaining(const dnn::Model &model,
                                std::size_t from_layer,
                                int num_tiles) const
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(model.uid()) << 16) |
        static_cast<std::uint64_t>(num_tiles & 0xffff);
    auto it = suffix_.find(key);
    if (it == suffix_.end()) {
        const std::size_t n = model.numLayers();
        std::vector<double> suffix(n + 1, 0.0);
        // Forward-order sums, matching computeOnlyEstimate exactly.
        for (std::size_t from = 0; from < n; ++from)
            suffix[from] =
                computeOnlyEstimate(model, from, num_tiles, cfg_);
        it = suffix_.emplace(key, std::move(suffix)).first;
    }
    const auto &suffix = it->second;
    if (from_layer >= suffix.size())
        return 0.0;
    return suffix[from_layer];
}

} // namespace moca::baselines
