#include "baselines/planaria.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/compute_estimator.h"
#include "common/argparse.h"
#include "common/log.h"

namespace moca::baselines {

bool
PlanariaConfig::applyParam(const std::string &key,
                           const std::string &value)
{
    if (key == "min_tiles") {
        minTiles = static_cast<int>(
            parseIntValue("planaria:" + key, value));
    } else if (key == "max_concurrent") {
        maxConcurrent = static_cast<int>(
            parseIntValue("planaria:" + key, value));
    } else {
        return false;
    }
    return true;
}

PlanariaPolicy::PlanariaPolicy(const sim::SocConfig &soc_cfg,
                               const PlanariaConfig &cfg)
    : cfg_(cfg), socCfg_(soc_cfg), estCache_(soc_cfg)
{
    if (cfg_.minTiles < 1)
        fatal("planaria: minTiles must be >= 1");
}

double
PlanariaPolicy::demandWeight(const sim::Soc &soc, int id) const
{
    // Deadline pressure: compute-only remaining work on one tile over
    // the time left to the SLA target, scaled by priority.  This is
    // the memory-oblivious estimate the paper critiques.
    const sim::JobSpec &spec = soc.job(id).spec;
    const double remain =
        estCache_.remaining(*spec.model, soc.jobLayer(id), 1);
    const double deadline = static_cast<double>(spec.dispatch) +
        static_cast<double>(spec.slaLatency);
    const double slack =
        std::max(1000.0, deadline - static_cast<double>(soc.now()));
    return (spec.priority + 1.0) * remain / slack;
}

void
PlanariaPolicy::refission(sim::Soc &soc)
{
    // Candidate set: running jobs plus the highest-scored waiting
    // jobs, up to the concurrency cap.
    std::vector<int> candidates = soc.runningJobs();
    {
        // Admission order is deadline-driven: priority over remaining
        // slack, so short-deadline (light) tasks are not starved by
        // heavyweight arrivals.
        auto urgency = [&](int id) {
            const sim::Job &j = soc.job(id);
            const double deadline =
                static_cast<double>(j.spec.dispatch) +
                static_cast<double>(j.spec.slaLatency);
            const double slack = std::max(
                1000.0, deadline - static_cast<double>(soc.now()));
            return (j.spec.priority + 1.0) / slack;
        };
        std::vector<int> waiting = soc.waitingJobs();
        std::stable_sort(waiting.begin(), waiting.end(),
                         [&](int a, int b) {
                             return urgency(a) > urgency(b);
                         });
        for (int id : waiting) {
            if (static_cast<int>(candidates.size()) >=
                std::min(cfg_.maxConcurrent, socCfg_.numTiles))
                break;
            candidates.push_back(id);
        }
    }

    desired_.clear();
    if (candidates.empty())
        return;

    // Proportional apportionment of tiles by demand weight, with a
    // per-job floor of minTiles (largest-remainder rounding).
    double total_weight = 0.0;
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (int id : candidates) {
        const double w = std::max(1e-9, demandWeight(soc, id));
        weights.push_back(w);
        total_weight += w;
    }

    const int tiles = socCfg_.numTiles;
    const int floor_tiles = cfg_.minTiles;
    std::vector<int> alloc(candidates.size(), floor_tiles);
    int remaining = tiles -
        floor_tiles * static_cast<int>(candidates.size());
    if (remaining < 0) {
        // More candidates than tiles allow at the floor: drop the
        // lowest-weight tail.
        while (remaining < 0 && !candidates.empty()) {
            std::size_t worst = 0;
            for (std::size_t i = 1; i < candidates.size(); ++i)
                if (weights[i] < weights[worst])
                    worst = i;
            total_weight -= weights[worst];
            candidates.erase(candidates.begin() +
                             static_cast<std::ptrdiff_t>(worst));
            weights.erase(weights.begin() +
                          static_cast<std::ptrdiff_t>(worst));
            alloc.pop_back();
            remaining += floor_tiles;
        }
    }

    std::vector<std::pair<double, std::size_t>> fracs;
    double frac_total = 0.0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const double share =
            remaining * weights[i] / std::max(1e-12, total_weight);
        const int whole = static_cast<int>(share);
        alloc[i] += whole;
        fracs.push_back({share - whole, i});
        frac_total += share;
    }
    int leftover = remaining;
    for (std::size_t i = 0; i < candidates.size(); ++i)
        leftover -= alloc[i] - floor_tiles;
    std::stable_sort(fracs.begin(), fracs.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    for (int k = 0; k < leftover && k < static_cast<int>(fracs.size());
         ++k)
        alloc[fracs[static_cast<std::size_t>(k)].second]++;

    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const int id = candidates[i];
        // Hysteresis at pod granularity: a running job's allocation
        // only changes when the target moves by more than one tile,
        // avoiding migration churn on every +-1 rebalance.
        const int cur_tiles = soc.jobTiles(id);
        if (soc.jobState(id) == sim::JobState::Running &&
            std::abs(alloc[i] - cur_tiles) <= 1) {
            desired_[id] = cur_tiles;
        } else {
            desired_[id] = alloc[i];
        }
    }
}

void
PlanariaPolicy::admit(sim::Soc &soc)
{
    // startJob erases from the live waiting set; iterate a copy.
    const std::vector<int> waiting = soc.waitingJobs();
    for (int id : waiting) {
        auto it = desired_.find(id);
        if (it == desired_.end())
            continue;
        const int want = std::min(it->second, soc.freeTiles());
        if (want >= cfg_.minTiles)
            soc.startJob(id, want);
    }
    // Safety: never idle the whole SoC while work is queued.
    if (soc.runningJobs().empty() && !soc.waitingJobs().empty()) {
        const int id = soc.waitingJobs().front();
        soc.startJob(id, std::max(cfg_.minTiles, soc.freeTiles()));
        desired_[id] = soc.jobTiles(id);
    }
}

void
PlanariaPolicy::schedule(sim::Soc &soc, sim::SchedEvent event)
{
    if (event == sim::SchedEvent::JobArrival ||
        event == sim::SchedEvent::JobCompletion ||
        soc.runningJobs().empty())
        refission(soc);
    admit(soc);
}

void
PlanariaPolicy::onBlockBoundary(sim::Soc &soc, int id)
{
    // Apply this job's pending fission target, paying the
    // thread-migration penalty.
    auto it = desired_.find(id);
    if (it == desired_.end())
        return;
    const int tiles = soc.jobTiles(id);
    const int target = std::min(it->second, tiles + soc.freeTiles());
    if (target >= cfg_.minTiles && target != tiles)
        soc.resizeJob(id, target);
}

void
PlanariaPolicy::onJobComplete(sim::Soc &, int id)
{
    desired_.erase(id);
}

} // namespace moca::baselines
