#include "baselines/planaria.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/compute_estimator.h"
#include "common/argparse.h"
#include "common/log.h"

namespace moca::baselines {

bool
PlanariaConfig::applyParam(const std::string &key,
                           const std::string &value)
{
    if (key == "min_tiles") {
        minTiles = static_cast<int>(
            parseIntValue("planaria:" + key, value));
    } else if (key == "max_concurrent") {
        maxConcurrent = static_cast<int>(
            parseIntValue("planaria:" + key, value));
    } else {
        return false;
    }
    return true;
}

PlanariaPolicy::PlanariaPolicy(const sim::SocConfig &soc_cfg,
                               const PlanariaConfig &cfg)
    : cfg_(cfg), socCfg_(soc_cfg)
{
    if (cfg_.minTiles < 1)
        fatal("planaria: minTiles must be >= 1");
}

double
PlanariaPolicy::demandWeight(const sim::Soc &soc,
                             const sim::Job &job) const
{
    // Deadline pressure: compute-only remaining work on one tile over
    // the time left to the SLA target, scaled by priority.  This is
    // the memory-oblivious estimate the paper critiques.
    const double remain = computeOnlyEstimate(
        *job.spec.model, job.layerIdx, 1, socCfg_);
    const double deadline = static_cast<double>(job.spec.dispatch) +
        static_cast<double>(job.spec.slaLatency);
    const double slack =
        std::max(1000.0, deadline - static_cast<double>(soc.now()));
    return (job.spec.priority + 1.0) * remain / slack;
}

void
PlanariaPolicy::refission(sim::Soc &soc)
{
    // Candidate set: running jobs plus the highest-scored waiting
    // jobs, up to the concurrency cap.
    std::vector<int> candidates = soc.runningJobs();
    {
        // Admission order is deadline-driven: priority over remaining
        // slack, so short-deadline (light) tasks are not starved by
        // heavyweight arrivals.
        auto urgency = [&](int id) {
            const sim::Job &j = soc.job(id);
            const double deadline =
                static_cast<double>(j.spec.dispatch) +
                static_cast<double>(j.spec.slaLatency);
            const double slack = std::max(
                1000.0, deadline - static_cast<double>(soc.now()));
            return (j.spec.priority + 1.0) / slack;
        };
        std::vector<int> waiting = soc.waitingJobs();
        std::stable_sort(waiting.begin(), waiting.end(),
                         [&](int a, int b) {
                             return urgency(a) > urgency(b);
                         });
        for (int id : waiting) {
            if (static_cast<int>(candidates.size()) >=
                std::min(cfg_.maxConcurrent, socCfg_.numTiles))
                break;
            candidates.push_back(id);
        }
    }

    desired_.clear();
    if (candidates.empty())
        return;

    // Proportional apportionment of tiles by demand weight, with a
    // per-job floor of minTiles (largest-remainder rounding).
    double total_weight = 0.0;
    std::vector<double> weights;
    weights.reserve(candidates.size());
    for (int id : candidates) {
        const double w = std::max(1e-9, demandWeight(soc, soc.job(id)));
        weights.push_back(w);
        total_weight += w;
    }

    const int tiles = socCfg_.numTiles;
    const int floor_tiles = cfg_.minTiles;
    std::vector<int> alloc(candidates.size(), floor_tiles);
    int remaining = tiles -
        floor_tiles * static_cast<int>(candidates.size());
    if (remaining < 0) {
        // More candidates than tiles allow at the floor: drop the
        // lowest-weight tail.
        while (remaining < 0 && !candidates.empty()) {
            std::size_t worst = 0;
            for (std::size_t i = 1; i < candidates.size(); ++i)
                if (weights[i] < weights[worst])
                    worst = i;
            total_weight -= weights[worst];
            candidates.erase(candidates.begin() +
                             static_cast<std::ptrdiff_t>(worst));
            weights.erase(weights.begin() +
                          static_cast<std::ptrdiff_t>(worst));
            alloc.pop_back();
            remaining += floor_tiles;
        }
    }

    std::vector<std::pair<double, std::size_t>> fracs;
    double frac_total = 0.0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const double share =
            remaining * weights[i] / std::max(1e-12, total_weight);
        const int whole = static_cast<int>(share);
        alloc[i] += whole;
        fracs.push_back({share - whole, i});
        frac_total += share;
    }
    int leftover = remaining;
    for (std::size_t i = 0; i < candidates.size(); ++i)
        leftover -= alloc[i] - floor_tiles;
    std::stable_sort(fracs.begin(), fracs.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    for (int k = 0; k < leftover && k < static_cast<int>(fracs.size());
         ++k)
        alloc[fracs[static_cast<std::size_t>(k)].second]++;

    for (std::size_t i = 0; i < candidates.size(); ++i) {
        const int id = candidates[i];
        // Hysteresis at pod granularity: a running job's allocation
        // only changes when the target moves by more than one tile,
        // avoiding migration churn on every +-1 rebalance.
        const sim::Job &j = soc.job(id);
        if (j.state == sim::JobState::Running &&
            std::abs(alloc[i] - j.numTiles) <= 1) {
            desired_[id] = j.numTiles;
        } else {
            desired_[id] = alloc[i];
        }
    }
}

void
PlanariaPolicy::admit(sim::Soc &soc)
{
    for (int id : soc.waitingJobs()) {
        auto it = desired_.find(id);
        if (it == desired_.end())
            continue;
        const int want = std::min(it->second, soc.freeTiles());
        if (want >= cfg_.minTiles)
            soc.startJob(id, want);
    }
    // Safety: never idle the whole SoC while work is queued.
    if (soc.runningJobs().empty() && !soc.waitingJobs().empty()) {
        const int id = soc.waitingJobs().front();
        soc.startJob(id, std::max(cfg_.minTiles, soc.freeTiles()));
        desired_[id] = soc.job(id).numTiles;
    }
}

void
PlanariaPolicy::schedule(sim::Soc &soc, sim::SchedEvent event)
{
    if (event == sim::SchedEvent::JobArrival ||
        event == sim::SchedEvent::JobCompletion ||
        soc.runningJobs().empty())
        refission(soc);
    admit(soc);
}

void
PlanariaPolicy::onBlockBoundary(sim::Soc &soc, sim::Job &job)
{
    // Apply this job's pending fission target, paying the
    // thread-migration penalty.
    auto it = desired_.find(job.spec.id);
    if (it == desired_.end())
        return;
    const int target = std::min(it->second,
                                job.numTiles + soc.freeTiles());
    if (target >= cfg_.minTiles && target != job.numTiles)
        soc.resizeJob(job.spec.id, target);
}

void
PlanariaPolicy::onJobComplete(sim::Soc &, sim::Job &job)
{
    desired_.erase(job.spec.id);
}

} // namespace moca::baselines
