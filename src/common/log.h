/**
 * @file
 * Status-message and error-reporting helpers, following the gem5
 * convention: inform() for status, warn() for suspicious-but-survivable
 * conditions, fatal() for user errors (config mistakes), and panic()
 * for internal invariant violations (simulator bugs).
 */

#ifndef MOCA_COMMON_LOG_H
#define MOCA_COMMON_LOG_H

#include <cstdarg>
#include <string>

namespace moca {

/** Verbosity levels for inform() output. */
enum class LogLevel { Quiet = 0, Normal = 1, Verbose = 2 };

/** Set the global verbosity; messages above this level are dropped. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Print an informational status message (printf-style).
 * Shown at LogLevel::Normal and above.
 */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Print a detailed status message (printf-style).
 * Shown only at LogLevel::Verbose.
 */
void verbose(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Warn about a condition that may indicate a problem but does not stop
 * the simulation.
 */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate due to a user-caused error (bad configuration, invalid
 * arguments).  Exits with status 1.
 */
[[noreturn]]
void fatal(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate due to an internal invariant violation, i.e. a simulator
 * bug that should never happen regardless of user input.  Aborts.
 */
[[noreturn]]
void panic(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace moca

#endif // MOCA_COMMON_LOG_H
