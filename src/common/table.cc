#include "common/table.h"

#include <cstdio>
#include <fstream>

#include "common/log.h"
#include "common/stats.h"

namespace moca {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    if (rows_.empty())
        row();
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    return cell(fmtDouble(value, precision));
}

Table &
Table::cell(long long value)
{
    return cell(strprintf("%lld", value));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    auto render_row = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < widths.size(); ++c) {
            std::string v = c < cells.size() ? cells[c] : "";
            v.resize(widths[c], ' ');
            line += v;
            if (c + 1 < widths.size())
                line += "  ";
        }
        // Trim trailing padding.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = render_row(headers_);
    std::size_t rule_len = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(rule_len, '-') + "\n";
    for (const auto &r : rows_)
        out += render_row(r);
    return out;
}

std::string
Table::csv() const
{
    auto escape = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string quoted = "\"";
        for (char ch : s) {
            if (ch == '"')
                quoted += "\"\"";
            else
                quoted += ch;
        }
        quoted += "\"";
        return quoted;
    };
    auto emit_row = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            line += escape(cells[c]);
            if (c + 1 < cells.size())
                line += ",";
        }
        return line + "\n";
    };
    std::string out = emit_row(headers_);
    for (const auto &r : rows_)
        out += emit_row(r);
    return out;
}

void
Table::print(const std::string &title) const
{
    if (!title.empty())
        std::printf("\n== %s ==\n", title.c_str());
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

void
Table::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("could not open %s for CSV output", path.c_str());
        return;
    }
    out << csv();
}

} // namespace moca
