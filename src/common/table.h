/**
 * @file
 * Console table and CSV emission used by the benchmark harness to
 * print paper-style rows/series (Figures 5-8, Tables II-IV).
 */

#ifndef MOCA_COMMON_TABLE_H
#define MOCA_COMMON_TABLE_H

#include <string>
#include <vector>

namespace moca {

/**
 * A simple row/column table with aligned console rendering and CSV
 * export.  Cells are strings; numeric helpers format on insertion.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls append to it. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a formatted numeric cell to the current row. */
    Table &cell(double value, int precision = 3);

    /** Append an integer cell. */
    Table &cell(long long value);

    std::size_t numRows() const { return rows_.size(); }

    /** Render with aligned columns, a header rule, and 2-space gaps. */
    std::string render() const;

    /** Render as CSV (RFC-4180-ish; quotes cells containing commas). */
    std::string csv() const;

    /** Print render() to stdout with an optional title line. */
    void print(const std::string &title = "") const;

    /** Write csv() to the given path; warns on failure. */
    void writeCsv(const std::string &path) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace moca

#endif // MOCA_COMMON_TABLE_H
