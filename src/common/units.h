/**
 * @file
 * Unit helpers shared across the simulator: cycle counts, byte sizes,
 * and the conversions between bandwidth expressed in GB/s and
 * bytes/cycle at the SoC clock.
 */

#ifndef MOCA_COMMON_UNITS_H
#define MOCA_COMMON_UNITS_H

#include <cstdint>

namespace moca {

/** Simulated clock cycles (1 GHz SoC clock in the default config). */
using Cycles = std::uint64_t;

constexpr std::uint64_t KiB = 1024ULL;
constexpr std::uint64_t MiB = 1024ULL * 1024ULL;
constexpr std::uint64_t GiB = 1024ULL * 1024ULL * 1024ULL;

/**
 * Convert a bandwidth in GB/s (decimal gigabytes, as vendor specs use)
 * to bytes per cycle at the given clock frequency in GHz.
 */
constexpr double
gbpsToBytesPerCycle(double gbps, double clock_ghz = 1.0)
{
    return gbps / clock_ghz;
}

/** Ceiling division for integral types. */
template <typename T>
constexpr T
ceilDiv(T num, T den)
{
    return (num + den - 1) / den;
}

} // namespace moca

#endif // MOCA_COMMON_UNITS_H
