#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace moca {

namespace {

// Read from sweep worker threads (every inform()/verbose() call);
// atomic so a main-thread setLogLevel() mid-sweep is not a data race.
std::atomic<LogLevel> g_level{LogLevel::Normal};

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

void
emit(const char *prefix, const char *fmt, va_list ap)
{
    std::string body = vformat(fmt, ap);
    std::fprintf(stderr, "%s%s\n", prefix, body.c_str());
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Normal)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info: ", fmt, ap);
    va_end(ap);
}

void
verbose(const char *fmt, ...)
{
    if (g_level < LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("debug: ", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn: ", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace moca
