/**
 * @file
 * The sanctioned wall-clock shim.  detlint rule R2 bans raw
 * `std::chrono::...::now()` reads outside src/common/ because host
 * time must never leak into simulation results — wall time is only
 * legitimate for *reporting* how long a bench took.  Routing every
 * such read through this header keeps the two uses distinguishable
 * at lint time: anything that imports <chrono> elsewhere is suspect.
 *
 * Nothing here may feed a scheduling or simulation decision.
 */

#ifndef MOCA_COMMON_WALLTIME_H
#define MOCA_COMMON_WALLTIME_H

#include <chrono>

namespace moca {

/**
 * Monotonic stopwatch for bench/CLI reporting.  Starts at
 * construction; `seconds()` reads the elapsed wall time and
 * `restart()` re-arms it (returning the lap it closed).
 */
class WallTimer
{
  public:
    WallTimer() : t0_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction or the last restart(). */
    double seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0_)
            .count();
    }

    /** Close the current lap and start a new one. */
    double restart()
    {
        const auto now = std::chrono::steady_clock::now();
        const double lap =
            std::chrono::duration<double>(now - t0_).count();
        t0_ = now;
        return lap;
    }

  private:
    std::chrono::steady_clock::time_point t0_;
};

} // namespace moca

#endif // MOCA_COMMON_WALLTIME_H
