/**
 * @file
 * Small string utilities shared by the self-registering factory
 * registries (policies, cluster dispatchers): edit distance for
 * did-you-mean suggestions and name-list joining for error messages.
 */

#ifndef MOCA_COMMON_TEXT_H
#define MOCA_COMMON_TEXT_H

#include <cstddef>
#include <string>
#include <vector>

namespace moca {

/** Levenshtein distance between two strings. */
std::size_t editDistance(const std::string &a, const std::string &b);

/** Join names with ", " ("prema, static, planaria, moca"). */
std::string joinNames(const std::vector<std::string> &names);

/**
 * Split a comma-separated list into its (possibly empty) tokens:
 * "1,4,64" -> {"1", "4", "64"}.  The shared tokenizer behind the
 * benches' list-valued options (tasks=, socs=, mix=).
 */
std::vector<std::string> splitCommaList(const std::string &text);

/**
 * The name in `known` closest to `name` in edit distance, or "" when
 * none is close enough to plausibly be a typo (distance greater than
 * max(2, |name|/3)).  Shared did-you-mean heuristic of the
 * registries' unknown-name errors.
 */
std::string nearestName(const std::string &name,
                        const std::vector<std::string> &known);

} // namespace moca

#endif // MOCA_COMMON_TEXT_H
