/**
 * @file
 * The shared *spec* grammar of every self-registering factory registry
 * in the tree (scheduling policies, cluster dispatchers, memory
 * models):
 *
 *     name[:key=value[,key=value...]]
 *
 * e.g. "moca", "moca:tick=2048,threshold=fixed",
 * "banked:banks=16,remap=xor".  A Spec is the parsed form; SpecParam
 * is one declared parameter of a registered factory (the schema entry
 * the registries validate specs against and print in their --list-*
 * catalogues).
 */

#ifndef MOCA_COMMON_SPEC_H
#define MOCA_COMMON_SPEC_H

#include <string>
#include <utility>
#include <vector>

namespace moca {

/** A parsed spec: base name + key=value parameters in the order
 *  given. */
struct Spec
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;

    /** Parse "name:key=value,..."; fatal on syntax errors.  `noun`
     *  names the spec kind in error messages ("policy",
     *  "dispatcher", "memory model") — required, so a new registry
     *  cannot silently mislabel its errors. */
    static Spec parse(const std::string &spec, const char *noun);

    /** Re-serialize to the canonical "name:key=value,..." form. */
    std::string canonical() const;

    /** Value of parameter `key`, or `def` when not given. */
    std::string param(const std::string &key,
                      const std::string &def) const;
};

/** One declared parameter of a registered factory (schema entry used
 *  by the --list-* catalogues and spec validation). */
struct SpecParam
{
    std::string key;
    std::string type; ///< "int", "double", "bool", or an enum list.
    std::string defaultValue;
    std::string description;
};

} // namespace moca

#endif // MOCA_COMMON_SPEC_H
