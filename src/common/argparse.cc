#include "common/argparse.h"

#include <cctype>
#include <cstdlib>

#include "common/log.h"

namespace moca {

namespace {

/** Whether a token can be the value of a preceding dashed option:
 *  anything not shaped like an option itself.  "-1.5" and "-.5" are
 *  values (negative numbers); "--jobs" and "-v" are options.  A bare
 *  key=value token is its own argument — except when a ':' precedes
 *  the first '=', which marks a policy spec ("moca:tick=2048"). */
bool
isOptionValue(const std::string &token)
{
    if (token.empty())
        return false;
    if (token[0] != '-') {
        const auto eq = token.find('=');
        return eq == std::string::npos ||
            token.find(':') < eq;
    }
    return token.size() > 1 &&
        (std::isdigit(static_cast<unsigned char>(token[1])) ||
         token[1] == '.');
}

} // namespace

std::int64_t
parseIntValue(const std::string &what, const std::string &value)
{
    char *end = nullptr;
    const long long v = std::strtoll(value.c_str(), &end, 0);
    if (end == value.c_str() || *end != '\0')
        fatal("%s=%s is not an integer", what.c_str(), value.c_str());
    return v;
}

double
parseDoubleValue(const std::string &what, const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        fatal("%s=%s is not a number", what.c_str(), value.c_str());
    return v;
}

bool
parseBoolValue(const std::string &what, const std::string &value)
{
    if (value == "1" || value == "true" || value == "yes" ||
        value == "on")
        return true;
    if (value == "0" || value == "false" || value == "no" ||
        value == "off")
        return false;
    fatal("%s=%s is not a boolean", what.c_str(), value.c_str());
}

ArgMap::ArgMap(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];

        // GNU-style spellings normalize onto the key=value map:
        // `--jobs 4`, `--jobs=4`, and `jobs=4` are equivalent.
        bool dashed = false;
        while (!arg.empty() && arg[0] == '-') {
            arg.erase(0, 1);
            dashed = true;
        }

        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (dashed && i + 1 < argc &&
                   isOptionValue(argv[i + 1])) {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = "1";
        }
    }
}

bool
ArgMap::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
ArgMap::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
ArgMap::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    return parseIntValue("argument " + key, it->second);
}

double
ArgMap::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    return parseDoubleValue("argument " + key, it->second);
}

bool
ArgMap::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    return parseBoolValue("argument " + key, it->second);
}

} // namespace moca
