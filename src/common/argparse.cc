#include "common/argparse.h"

#include <cstdlib>

#include "common/log.h"

namespace moca {

ArgMap::ArgMap(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        if (eq == std::string::npos) {
            values_[arg] = "1";
        } else {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        }
    }
}

bool
ArgMap::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
ArgMap::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
ArgMap::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("argument %s=%s is not an integer",
              key.c_str(), it->second.c_str());
    return v;
}

double
ArgMap::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("argument %s=%s is not a number",
              key.c_str(), it->second.c_str());
    return v;
}

bool
ArgMap::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("argument %s=%s is not a boolean", key.c_str(), v.c_str());
}

} // namespace moca
