#include "common/argparse.h"

#include <cctype>
#include <cstdlib>

#include "common/log.h"

namespace moca {

namespace {

/** Whether a token can be the value of a preceding dashed option:
 *  anything not shaped like an option itself.  "-1.5" and "-.5" are
 *  values (negative numbers); "--jobs" and "-v" are options. */
bool
isOptionValue(const std::string &token)
{
    if (token.empty())
        return false;
    if (token[0] != '-')
        return token.find('=') == std::string::npos;
    return token.size() > 1 &&
        (std::isdigit(static_cast<unsigned char>(token[1])) ||
         token[1] == '.');
}

} // namespace

ArgMap::ArgMap(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];

        // GNU-style spellings normalize onto the key=value map:
        // `--jobs 4`, `--jobs=4`, and `jobs=4` are equivalent.
        bool dashed = false;
        while (!arg.empty() && arg[0] == '-') {
            arg.erase(0, 1);
            dashed = true;
        }

        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (dashed && i + 1 < argc &&
                   isOptionValue(argv[i + 1])) {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = "1";
        }
    }
}

bool
ArgMap::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
ArgMap::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
ArgMap::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("argument %s=%s is not an integer",
              key.c_str(), it->second.c_str());
    return v;
}

double
ArgMap::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("argument %s=%s is not a number",
              key.c_str(), it->second.c_str());
    return v;
}

bool
ArgMap::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("argument %s=%s is not a boolean", key.c_str(), v.c_str());
}

} // namespace moca
