#include "common/rng.h"

#include <cmath>

#include "common/log.h"

namespace moca {

namespace {

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &lane : s_)
        lane = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 significant bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("uniformInt: lo %lld > hi %lld",
              static_cast<long long>(lo), static_cast<long long>(hi));
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Unbiased rejection sampling (Lemire-style threshold).
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % span);
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        panic("exponential: mean must be positive, got %f", mean);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

std::size_t
Rng::categorical(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            panic("categorical: negative weight %f", w);
        total += w;
    }
    if (total <= 0.0)
        panic("categorical: all weights are zero");
    double draw = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        draw -= weights[i];
        if (draw < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i)
        perm[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        const auto j =
            static_cast<std::size_t>(uniformInt(0,
                static_cast<std::int64_t>(i) - 1));
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

} // namespace moca
