/**
 * @file
 * Minimal key=value argument parsing for the benchmark and example
 * binaries, e.g. `fig5_sla tasks=300 seed=7 load=0.9`.
 */

#ifndef MOCA_COMMON_ARGPARSE_H
#define MOCA_COMMON_ARGPARSE_H

#include <cstdint>
#include <map>
#include <string>

namespace moca {

/**
 * Parse a typed value out of a free-standing string (shared by ArgMap
 * and the policy-spec parameter surface).  `what` names the setting in
 * the fatal() message on malformed input.
 */
std::int64_t parseIntValue(const std::string &what,
                           const std::string &value);
double parseDoubleValue(const std::string &what,
                        const std::string &value);
bool parseBoolValue(const std::string &what, const std::string &value);

/** Parsed key=value command-line overrides with typed lookups. */
class ArgMap
{
  public:
    ArgMap() = default;

    /**
     * Parse argv entries of the form key=value; entries without '='
     * are treated as boolean flags set to "1".
     */
    ArgMap(int argc, char **argv);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    const std::map<std::string, std::string> &entries() const
    {
        return values_;
    }

  private:
    std::map<std::string, std::string> values_;
};

} // namespace moca

#endif // MOCA_COMMON_ARGPARSE_H
