#include "common/spec.h"

#include "common/log.h"

namespace moca {

Spec
Spec::parse(const std::string &spec, const char *noun)
{
    Spec out;
    const auto colon = spec.find(':');
    out.name = spec.substr(0, colon);
    if (out.name.empty())
        fatal("empty %s spec%s", noun,
              spec.empty() ? "" : (" in '" + spec + "'").c_str());
    if (colon == std::string::npos)
        return out;

    std::string rest = spec.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
        auto comma = rest.find(',', pos);
        if (comma == std::string::npos)
            comma = rest.size();
        const std::string item = rest.substr(pos, comma - pos);
        const auto eq = item.find('=');
        if (item.empty() || eq == 0 || eq == std::string::npos)
            fatal("malformed %s spec '%s': expected "
                  "key=value after ':', got '%s'",
                  noun, spec.c_str(), item.c_str());
        out.params.emplace_back(item.substr(0, eq),
                                item.substr(eq + 1));
        pos = comma + 1;
        if (comma == rest.size())
            break;
    }
    return out;
}

std::string
Spec::canonical() const
{
    std::string out = name;
    for (std::size_t i = 0; i < params.size(); ++i) {
        out += i == 0 ? ":" : ",";
        out += params[i].first + "=" + params[i].second;
    }
    return out;
}

std::string
Spec::param(const std::string &key, const std::string &def) const
{
    for (const auto &[k, v] : params)
        if (k == key)
            return v;
    return def;
}

} // namespace moca
