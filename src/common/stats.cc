#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace moca {

void
StatAccum::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
StatAccum::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
StatAccum::min() const
{
    return count_ ? min_ : 0.0;
}

double
StatAccum::max() const
{
    return count_ ? max_ : 0.0;
}

double
StatAccum::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
StatAccum::stddev() const
{
    return std::sqrt(variance());
}

void
StatAccum::reset()
{
    *this = StatAccum();
}

void
SampleSet::ensureSorted() const
{
    if (!dirty_ && sorted_.size() == samples_.size())
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
}

double
SampleSet::mean() const
{
    if (samples_.empty())
        return 0.0;
    double total = 0.0;
    for (double s : samples_)
        total += s;
    return total / static_cast<double>(samples_.size());
}

double
SampleSet::min() const
{
    ensureSorted();
    return sorted_.empty() ? 0.0 : sorted_.front();
}

double
SampleSet::max() const
{
    ensureSorted();
    return sorted_.empty() ? 0.0 : sorted_.back();
}

double
SampleSet::percentile(double p) const
{
    if (p < 0.0 || p > 100.0)
        panic("percentile out of range: %f", p);
    ensureSorted();
    if (sorted_.empty())
        return 0.0;
    if (sorted_.size() == 1)
        return sorted_.front();
    const double rank =
        p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

PercentileSummary
percentileSummary(const std::vector<double> &values)
{
    SampleSet s;
    for (double v : values)
        s.add(v);
    PercentileSummary out;
    if (s.empty())
        return out;
    out.p50 = s.percentile(50.0);
    out.p95 = s.percentile(95.0);
    out.p99 = s.percentile(99.0);
    return out;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geomean requires positive values, got %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double total = 0.0;
    for (double v : values)
        total += v;
    return total / static_cast<double>(values.size());
}

std::string
fmtDouble(double v, int precision)
{
    return strprintf("%.*f", precision, v);
}

} // namespace moca
