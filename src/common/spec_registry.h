/**
 * @file
 * Templated base of the self-registering spec-keyed factory
 * registries: exp::PolicyRegistry, cluster::DispatcherRegistry, and
 * mem::MemoryModelRegistry are each a thin subclass instead of three
 * copies of the same machinery.
 *
 * The base owns everything that does not depend on the factory
 * signature: registration (with name validation and duplicate
 * detection), name lookup with did-you-mean suggestions, parameter-key
 * validation against the declared schema, and the human-readable
 * `--list-*` catalogue.  Subclasses add their `make()` entry points
 * (whose arguments differ — a policy builds against a SocConfig, a
 * dispatcher against a fleet size and seed) and decide how deep their
 * `validate()` goes (structural vs. trial-build).
 *
 * `Info` must provide the fields `name` (std::string), `description`
 * (std::string), `params` (std::vector<SpecParam>), and a callable
 * `factory`.
 */

#ifndef MOCA_COMMON_SPEC_REGISTRY_H
#define MOCA_COMMON_SPEC_REGISTRY_H

#include <map>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/spec.h"
#include "common/text.h"

namespace moca {

template <typename Info>
class SpecRegistry
{
  public:
    /** Register an entry; fatal on a duplicate or malformed name. */
    void add(Info info)
    {
        if (info.name.empty())
            fatal("cannot register a %s with an empty name", noun_);
        if (info.name.find(':') != std::string::npos ||
            info.name.find(',') != std::string::npos ||
            info.name.find('=') != std::string::npos)
            fatal("%s name '%s' may not contain ':', ',' or '='",
                  noun_, info.name.c_str());
        if (!info.factory)
            fatal("%s '%s' registered without a factory", noun_,
                  info.name.c_str());
        if (byName_.count(info.name) > 0)
            fatal("%s '%s' is already registered", noun_,
                  info.name.c_str());
        byName_[info.name] = infos_.size();
        infos_.push_back(std::move(info));
    }

    bool contains(const std::string &name) const
    {
        return byName_.count(name) > 0;
    }

    /** Registered names in registration order. */
    std::vector<std::string> names() const
    {
        std::vector<std::string> out;
        out.reserve(infos_.size());
        for (const auto &i : infos_)
            out.push_back(i.name);
        return out;
    }

    /** Metadata for `name`; fatal (with did-you-mean) when unknown. */
    const Info &info(const std::string &name) const
    {
        const Info *i = find(name);
        if (i == nullptr)
            unknownName(name);
        return *i;
    }

    /** Human-readable catalogue (--list-* output). */
    std::string listText() const
    {
        std::string out = strprintf(
            "registered %s (spec grammar: name[:key=value,...]):\n",
            nounPlural_);
        for (const auto &i : infos_) {
            out += "  " + i.name + " — " + i.description + "\n";
            for (const auto &param : i.params)
                out += strprintf(
                    "      %-20s %-13s default %-7s %s\n",
                    param.key.c_str(), param.type.c_str(),
                    param.defaultValue.c_str(),
                    param.description.c_str());
        }
        return out;
    }

  protected:
    /**
     * @param noun        singular noun for messages ("policy").
     * @param noun_plural plural noun ("policies").
     * @param list_flag   the catalogue flag ("--list-policies").
     */
    SpecRegistry(const char *noun, const char *noun_plural,
                 const char *list_flag)
        : noun_(noun), nounPlural_(noun_plural), listFlag_(list_flag)
    {
    }

    ~SpecRegistry() = default;

    /** Name + declared-parameter-key validation shared by the
     *  subclasses' make() and validate(); fatal with actionable
     *  messages. */
    const Info &checkSpec(const Spec &spec) const
    {
        const Info &i = info(spec.name);
        for (const auto &[key, value] : spec.params) {
            (void)value;
            bool declared = false;
            for (const auto &p : i.params)
                if (p.key == key) {
                    declared = true;
                    break;
                }
            if (!declared) {
                std::string keys;
                for (const auto &p : i.params) {
                    if (!keys.empty())
                        keys += ", ";
                    keys += p.key;
                }
                fatal("%s '%s' has no parameter '%s'; declared "
                      "parameters: %s",
                      noun_, spec.name.c_str(), key.c_str(),
                      keys.empty() ? "(none)" : keys.c_str());
            }
        }
        return i;
    }

  private:
    const Info *find(const std::string &name) const
    {
        auto it = byName_.find(name);
        return it == byName_.end() ? nullptr : &infos_[it->second];
    }

    [[noreturn]] void unknownName(const std::string &name) const
    {
        // Did-you-mean: the registered name closest in edit distance,
        // suggested only when it is plausibly a typo.
        const std::string nearest = nearestName(name, names());
        const bool suggest = !nearest.empty();
        fatal("unknown %s '%s'%s%s%s; known %s: %s "
              "(run with %s for parameters)",
              noun_, name.c_str(), suggest ? " (did you mean '" : "",
              suggest ? nearest.c_str() : "", suggest ? "'?)" : "",
              nounPlural_, joinNames(names()).c_str(), listFlag_);
    }

    const char *noun_;
    const char *nounPlural_;
    const char *listFlag_;
    std::vector<Info> infos_;
    std::map<std::string, std::size_t> byName_;
};

} // namespace moca

#endif // MOCA_COMMON_SPEC_REGISTRY_H
