#include "common/text.h"

#include <algorithm>

namespace moca {

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string out;
    for (const auto &n : names) {
        if (!out.empty())
            out += ", ";
        out += n;
    }
    return out;
}

std::vector<std::string>
splitCommaList(const std::string &text)
{
    std::vector<std::string> tokens;
    std::size_t pos = 0;
    for (;;) {
        const std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos) {
            tokens.push_back(text.substr(pos));
            return tokens;
        }
        tokens.push_back(text.substr(pos, comma - pos));
        pos = comma + 1;
    }
}

std::string
nearestName(const std::string &name,
            const std::vector<std::string> &known)
{
    std::string nearest;
    std::size_t best = static_cast<std::size_t>(-1);
    for (const auto &k : known) {
        const std::size_t d = editDistance(name, k);
        if (d < best) {
            best = d;
            nearest = k;
        }
    }
    if (nearest.empty() ||
        best > std::max<std::size_t>(2, name.size() / 3))
        return "";
    return nearest;
}

} // namespace moca
