/**
 * @file
 * Deterministic pseudo-random number generation for all stochastic
 * parts of the evaluation (task dispatch times, priority draws,
 * workload selection).  A single seeded xoshiro256** generator keeps
 * every experiment bit-reproducible; benches print their seed.
 */

#ifndef MOCA_COMMON_RNG_H
#define MOCA_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace moca {

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * implementation re-expressed in C++).  Fast, high-quality, and
 * sufficient for workload generation; not cryptographic.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /**
     * Draw an index from a categorical distribution given by
     * (unnormalized) weights.
     * @param weights non-negative weights; at least one must be > 0.
     * @return index in [0, weights.size()).
     */
    std::size_t categorical(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an index permutation [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

  private:
    std::uint64_t s_[4];
};

} // namespace moca

#endif // MOCA_COMMON_RNG_H
