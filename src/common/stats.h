/**
 * @file
 * Lightweight statistics accumulators used by the simulator and the
 * evaluation harness: streaming mean/min/max/stddev, percentile
 * sampling, and geometric-mean helpers for the paper-style summary
 * numbers.
 */

#ifndef MOCA_COMMON_STATS_H
#define MOCA_COMMON_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace moca {

/**
 * Streaming accumulator with Welford's online variance algorithm.
 * Cheap enough to keep one per hardware counter.
 */
class StatAccum
{
  public:
    void add(double x);

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double min() const;
    double max() const;
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;

    void reset();

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Accumulator that retains all samples so that percentiles and tail
 * statistics can be computed; used for latency distributions.
 */
class SampleSet
{
  public:
    void add(double x) { samples_.push_back(x); }
    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    double mean() const;
    double min() const;
    double max() const;

    /**
     * Percentile with linear interpolation between closest ranks.
     * @param p in [0, 100].
     */
    double percentile(double p) const;

    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
    // detlint: allow(R4) per-instance lazy sort cache, not shared
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = true;

    void ensureSorted() const;
};

/**
 * The p50/p95/p99 tail summary of a latency distribution — the
 * fleet-level numbers a serving system is judged by.  Zeros when the
 * sample set is empty.
 */
struct PercentileSummary
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** p50/p95/p99 of `values` (linear interpolation between ranks; use
 *  SampleSet::percentile for other percentiles). */
PercentileSummary percentileSummary(const std::vector<double> &values);

/** Geometric mean of positive values; fatals on non-positive input. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &values);

/** Format a double with the given precision into a string. */
std::string fmtDouble(double v, int precision = 3);

} // namespace moca

#endif // MOCA_COMMON_STATS_H
