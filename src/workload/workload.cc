#include "workload/workload.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace moca::workload {

double
qosMultiplier(QosLevel level)
{
    switch (level) {
      case QosLevel::Light: return 1.2;
      case QosLevel::Medium: return 1.0;
      case QosLevel::Hard: return 0.8;
    }
    panic("bad QoS level");
}

const char *
qosLevelName(QosLevel level)
{
    switch (level) {
      case QosLevel::Light: return "QoS-L";
      case QosLevel::Medium: return "QoS-M";
      case QosLevel::Hard: return "QoS-H";
    }
    return "?";
}

const std::vector<dnn::ModelId> &
workloadSetModels(WorkloadSet set)
{
    switch (set) {
      case WorkloadSet::A: return dnn::workloadSetA();
      case WorkloadSet::B: return dnn::workloadSetB();
      case WorkloadSet::C: return dnn::workloadSetC();
    }
    panic("bad workload set");
}

const char *
workloadSetName(WorkloadSet set)
{
    switch (set) {
      case WorkloadSet::A: return "Workload-A";
      case WorkloadSet::B: return "Workload-B";
      case WorkloadSet::C: return "Workload-C";
    }
    return "?";
}

const std::vector<double> &
priorityWeights()
{
    // Priorities 0..11; mass concentrated at the low end with a thin
    // high-priority tail, after the Google-trace analyses [11], [37].
    static const std::vector<double> weights = {
        0.30, 0.12, 0.10,       // p-Low  (0-2)
        0.08, 0.07, 0.06, 0.06, // p-Mid  (3-8)
        0.05, 0.05,
        0.045, 0.035, 0.02,     // p-High (9-11)
    };
    return weights;
}

PriorityGroup
priorityGroup(int priority)
{
    if (priority <= 2)
        return PriorityGroup::Low;
    if (priority <= 8)
        return PriorityGroup::Mid;
    return PriorityGroup::High;
}

const char *
priorityGroupName(PriorityGroup g)
{
    switch (g) {
      case PriorityGroup::Low: return "p-Low";
      case PriorityGroup::Mid: return "p-Mid";
      case PriorityGroup::High: return "p-High";
    }
    return "?";
}

const char *
arrivalPatternName(ArrivalPattern pattern)
{
    switch (pattern) {
      case ArrivalPattern::Poisson: return "poisson";
      case ArrivalPattern::Uniform: return "uniform";
      case ArrivalPattern::Bursty: return "bursty";
    }
    return "?";
}

std::vector<sim::JobSpec>
generateTrace(const TraceConfig &cfg,
              const std::function<Cycles(dnn::ModelId)> &isolated_latency)
{
    if (cfg.numTasks < 1)
        fatal("trace needs at least one task");
    if (cfg.loadFactor <= 0.0)
        fatal("loadFactor must be positive");

    const auto &models = workloadSetModels(cfg.set);
    Rng rng(cfg.seed);

    // Mean isolated single-tile latency over the set's models, for
    // the arrival-rate calibration.
    double mean_iso = 0.0;
    for (dnn::ModelId id : models)
        mean_iso += static_cast<double>(isolated_latency(id));
    mean_iso /= static_cast<double>(models.size());

    const double mean_interarrival =
        mean_iso / (cfg.loadFactor * cfg.numTiles);

    const double qos_mult = qosMultiplier(cfg.qos) * cfg.qosScale;

    std::vector<sim::JobSpec> specs;
    specs.reserve(static_cast<std::size_t>(cfg.numTasks));
    double t = 0.0;
    int burst_left = 0;
    for (int i = 0; i < cfg.numTasks; ++i) {
        switch (cfg.arrivals) {
          case ArrivalPattern::Poisson:
            t += rng.exponential(mean_interarrival);
            break;
          case ArrivalPattern::Uniform:
            t += rng.uniform(0.5 * mean_interarrival,
                             1.5 * mean_interarrival);
            break;
          case ArrivalPattern::Bursty:
            // Bursts arrive back-to-back; gaps between bursts are
            // stretched so the long-run rate matches the load factor.
            if (burst_left > 0) {
                --burst_left;
            } else {
                const double burst_mean =
                    std::max(1.0, cfg.burstMean);
                burst_left = burst_mean > 1.0
                    ? static_cast<int>(
                          rng.exponential(burst_mean - 1.0) + 0.5)
                    : 0;
                t += rng.exponential(
                    mean_interarrival * (1.0 + burst_left));
            }
            break;
        }
        const dnn::ModelId mid =
            models[rng.categorical(
                std::vector<double>(models.size(), 1.0))];

        sim::JobSpec spec;
        spec.id = i;
        spec.model = &dnn::getModel(mid);
        spec.dispatch = static_cast<Cycles>(t);
        spec.priority =
            static_cast<int>(rng.categorical(priorityWeights()));
        spec.slaLatency = static_cast<Cycles>(
            qos_mult * static_cast<double>(isolated_latency(mid)));
        specs.push_back(spec);
    }
    return specs;
}

} // namespace moca::workload
