/**
 * @file
 * Multi-tenant workload generation (paper Sec. IV-B): N inference
 * tasks drawn from a workload set (A: light, B: heavy, C: mixed) are
 * dispatched at random times with user-defined static priorities in
 * 0..11 following the Google-trace-derived distribution of [11], [37],
 * and per-task QoS (SLA) targets at three levels:
 * QoS-L = 1.2x, QoS-M = 1.0x, QoS-H = 0.8x the baseline target.
 *
 * The baseline QoS target of a model is a multiple of its isolated
 * single-tile latency ("each of our accelerator tiles is close to an
 * edge device", Sec. IV-B), exposed as `qosScale`.
 */

#ifndef MOCA_WORKLOAD_WORKLOAD_H
#define MOCA_WORKLOAD_WORKLOAD_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "dnn/model_zoo.h"
#include "sim/job.h"

namespace moca::workload {

/** The paper's three QoS levels. */
enum class QosLevel
{
    Light,  ///< QoS-L: 1.2x baseline target.
    Medium, ///< QoS-M: baseline target.
    Hard,   ///< QoS-H: 0.8x baseline target.
};

/** Latency-target multiplier for a QoS level. */
double qosMultiplier(QosLevel level);

/** Printable name ("QoS-L", ...). */
const char *qosLevelName(QosLevel level);

/** The paper's three workload sets (Table III). */
enum class WorkloadSet { A, B, C };

/** Models in the given set. */
const std::vector<dnn::ModelId> &workloadSetModels(WorkloadSet set);

/** Printable name ("Workload-A", ...). */
const char *workloadSetName(WorkloadSet set);

/**
 * Static priority distribution over levels 0..11, shaped after the
 * published Google-trace analyses used by the paper (most tasks at
 * low priority, a thin high-priority tail).
 */
const std::vector<double> &priorityWeights();

/** Group a 0..11 priority into the paper's p-Low/p-Mid/p-High bins. */
enum class PriorityGroup { Low, Mid, High };
PriorityGroup priorityGroup(int priority);
const char *priorityGroupName(PriorityGroup g);

/** Inter-arrival process of the dispatched requests. */
enum class ArrivalPattern
{
    Poisson, ///< Exponential inter-arrivals (default).
    Uniform, ///< Uniform jitter around the mean inter-arrival.
    Bursty,  ///< Geometric bursts arriving back-to-back.
};

/** Printable pattern name. */
const char *arrivalPatternName(ArrivalPattern pattern);

/** Parameters of one generated multi-tenant trace. */
struct TraceConfig
{
    WorkloadSet set = WorkloadSet::C;
    QosLevel qos = QosLevel::Medium;
    int numTasks = 250;

    ArrivalPattern arrivals = ArrivalPattern::Poisson;

    /** Mean burst size for ArrivalPattern::Bursty (>= 1). */
    double burstMean = 4.0;

    /**
     * Offered load as a fraction of aggregate SoC tile-capacity:
     * arrival rate = loadFactor * numTiles / mean isolated single-tile
     * latency of the set's models.  0.8 stresses the tile array,
     * which is the contention-heavy regime the paper evaluates.
     */
    double loadFactor = 0.8;

    /** QoS-M target = qosScale x isolated single-tile latency
     *  (edge-device-grade budgets per [4]). */
    double qosScale = 4.0;

    std::uint64_t seed = 1;

    int numTiles = 8; ///< For the arrival-rate computation.
};

/**
 * Generate a multi-tenant trace.
 *
 * @param cfg trace parameters.
 * @param isolated_latency oracle returning each model's isolated
 *        single-tile latency in cycles (used for the QoS target and
 *        the arrival-rate calibration).
 */
std::vector<sim::JobSpec>
generateTrace(const TraceConfig &cfg,
              const std::function<Cycles(dnn::ModelId)> &isolated_latency);

} // namespace moca::workload

#endif // MOCA_WORKLOAD_WORKLOAD_H
