/**
 * @file
 * Sharded parallel fleet execution: a conservative parallel-discrete-
 * event-simulation (PDES) kernel for the cluster simulator.
 *
 * SoCs share nothing between cluster-level events (task arrivals), so
 * the fleet parallelizes with *zero fidelity loss*: the engine
 * partitions the SoCs into per-worker shards, and each *epoch* every
 * worker advances its shard's SoCs up to the shared conservative
 * horizon — the next arrival/dispatch time, which is exactly the
 * lookahead a conservative PDES needs, and exactly the clamp
 * `sim::Soc::advanceTo(horizon)` provides.  A barrier then returns
 * control to the single-threaded dispatcher loop, which consumes
 * arrivals, polls load snapshots (assembled in SoC-index order
 * regardless of which worker produced the state), and injects the
 * placed tasks before releasing the next epoch.
 *
 * Determinism contract (the whole point): a sharded run is
 * bit-identical to the serial run — same `ClusterResult`, same
 * per-task latencies, `jobs=1 == jobs=N` for every N.  It holds
 * because
 *
 *  1. each SoC is advanced by exactly one worker, through exactly the
 *     per-SoC step sequence the serial loop produces (the horizon
 *     sequence a SoC observes is the arrival sequence, independent of
 *     sharding);
 *  2. every cross-shard aggregate is reduced on the coordinator in
 *     index order (per-worker next-event minima, stepped counts), so
 *     no result depends on worker completion order;
 *  3. per-SoC RNG/seeding is untouched — shard count cannot perturb
 *     any stream; and
 *  4. the barrier's mutex orders every worker write before every
 *     coordinator read (and vice versa), so the dispatcher sees a
 *     quiescent fleet, never a torn one.
 *
 * Lookahead bookkeeping rides along: the engine maintains the
 * fleet-wide minimum of `Soc::nextEventTime()` from per-shard minima
 * and skips an epoch outright — a *horizon stall* — when that bound
 * shows no SoC has pending activity before the horizon (simultaneous
 * arrivals, or a burst arriving into a fully drained fleet).  Such an
 * epoch is provably a no-op for every SoC, so skipping it is
 * bit-identical and saves the barrier round-trip.  EpochStats exposes
 * epochs / stepped-SoC counts / stall counts so lookahead quality is
 * observable in ClusterResult.
 *
 * This container is single-core: the engine's job here is to prove
 * the determinism contract and bound the epoch overhead (the TSan CI
 * lane runs it at jobs=4); wall-clock speedup lands on real hardware.
 */

#ifndef MOCA_CLUSTER_PARALLEL_H
#define MOCA_CLUSTER_PARALLEL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/units.h"
#include "common/walltime.h"
#include "sim/soc.h"

namespace moca::cluster {

/** Epoch-granularity observability of one fleet run. */
struct EpochStats
{
    /** Barrier epochs executed (workers released + joined). */
    std::uint64_t epochs = 0;

    /** Sum over executed epochs of SoCs that stepped at least once;
     *  meanSocsStepped() is the per-epoch mean. */
    std::uint64_t socsStepped = 0;

    /**
     * Epochs skipped because the conservative lookahead (fleet-wide
     * min of Soc::nextEventTime()) showed no SoC activity before the
     * horizon.  High stall counts mean the arrival stream is denser
     * than the fleet's event stream — the lookahead window is empty
     * and the run is dispatcher-bound, not simulation-bound.
     */
    std::uint64_t horizonStalls = 0;

    /** Mean SoCs stepped per executed epoch (0 when no epochs ran). */
    double meanSocsStepped() const
    {
        return epochs == 0 ? 0.0
                           : static_cast<double>(socsStepped) /
                static_cast<double>(epochs);
    }
};

/**
 * The conservative-PDES cluster kernel: a persistent worker pool over
 * contiguous SoC shards with an epoch barrier.
 *
 * With one shard (jobs=1, or a 1-SoC fleet) no threads are spawned
 * and epochs run inline on the caller — the parallel and serial paths
 * are the same code, which is what makes the jobs=1 == jobs=N
 * contract trivially auditable.
 */
class ParallelEngine
{
  public:
    /**
     * @param socs the fleet, index-stable for the engine's lifetime
     *        (not owned; must outlive the engine).
     * @param jobs worker count; shard count is min(jobs, socs.size())
     *        with contiguous index blocks.  Fatal when jobs < 1.
     * @param on_advanced optional per-SoC hook run by the owning
     *        worker right after the SoC reaches the epoch horizon
     *        (e.g. harvesting completed-job feedback).  Called with
     *        the SoC index; must be safe to call concurrently for
     *        *different* indices.
     * @param profile accumulate per-worker shard-advance and
     *        barrier-wait wall time (via the common/walltime.h shim;
     *        see phaseTotals()).  Purely diagnostic — off by default
     *        so the hot path pays nothing.
     */
    ParallelEngine(std::vector<sim::Soc *> socs, int jobs,
                   std::function<void(std::size_t)> on_advanced = {},
                   bool profile = false);
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /** Shards (== worker threads when > 1). */
    int shardCount() const
    {
        return static_cast<int>(shards_.size());
    }

    /**
     * One conservative epoch: advance every SoC to `horizon`
     * (sim::kNoHorizon drains the fleet to completion), run the
     * on_advanced hook per SoC, and synchronize.  Returns after the
     * barrier, so the caller observes every shard's writes; skipped
     * entirely (a horizon stall) when fleetNextEvent() >= horizon.
     */
    void advanceFleet(Cycles horizon);

    /**
     * Fleet-wide minimum of Soc::nextEventTime(), maintained from
     * per-shard minima reduced in shard-index order after each epoch
     * (sim::kNoEvent when every SoC has drained).
     */
    Cycles fleetNextEvent() const { return fleet_next_event_; }

    /**
     * Tell the engine the coordinator mutated SoC `soc_idx` between
     * epochs (task injection): its next-event bound may have moved
     * earlier, so the owning shard's cached minimum is refreshed and
     * the fleet bound re-reduced in shard-index order.
     */
    void noteInjected(std::size_t soc_idx);

    /**
     * Include/exclude SoC `soc_idx` from epochs (serve-layer failure
     * injection and autoscaler capacity churn).  An inactive SoC is
     * never advanced — its clock freezes wherever the last epoch left
     * it — and contributes kNoEvent to the conservative lookahead.
     * Coordinator-only, between epochs (i.e. at a quiescent barrier
     * point), so the change is ordered against every worker exactly
     * like an injection; the owning shard's bound is recomputed from
     * scratch (deactivation can move it *later*, which the min-merge
     * of noteInjected could not express).
     */
    void setActive(std::size_t soc_idx, bool active);
    bool isActive(std::size_t soc_idx) const;

    /**
     * Swap the occupant of slot `soc_idx` (e.g. a recovered SoC
     * replacing a failed one's frozen simulator).  The new SoC must
     * outlive the engine like the originals; shard layout is
     * untouched — slots, not SoC objects, are sharded.  Coordinator-
     * only, between epochs.
     */
    void replaceSoc(std::size_t soc_idx, sim::Soc *soc);

    const EpochStats &stats() const { return stats_; }

    /**
     * Wall-clock phase totals summed over shards in index order
     * (zeros unless constructed with profile=true): time workers
     * spent advancing their shard's SoCs vs parked at the epoch
     * barrier waiting for work.  Coordinator-only, between epochs —
     * the barrier orders the workers' accumulator writes exactly
     * like the shard minima reads.
     */
    void phaseTotals(double &advance_sec, double &wait_sec) const;

  private:
    /** One worker's contiguous SoC range plus its reduction slots
     *  (written only by the owning worker during an epoch, read only
     *  by the coordinator after the barrier). */
    struct Shard
    {
        std::size_t begin = 0;
        std::size_t end = 0;
        Cycles minNextEvent = sim::kNoEvent;
        std::uint64_t stepped = 0;
        /** Wall-clock accumulators (profile mode only; see
         *  phaseTotals()). */
        double advanceSec = 0.0;
        double waitSec = 0.0;
    };

    void runShard(Shard &shard);
    void workerLoop(std::size_t shard_idx);
    void reduceShardMinima();
    /** Recompute one slot's shard bound from scratch (coordinator
     *  mutations: activation changes, occupant swaps). */
    void refreshShard(std::size_t soc_idx);

    std::vector<sim::Soc *> socs_;
    /** Per-slot activation mask (see setActive); char, not bool, so
     *  workers read plain bytes their own shard never writes. */
    std::vector<char> active_;
    std::function<void(std::size_t)> on_advanced_;
    std::vector<Shard> shards_;
    std::vector<std::thread> workers_;

    // Epoch hand-off: the coordinator publishes horizon_ and bumps
    // generation_ under mu_; workers run their shard, then count into
    // done_count_.  The mutex pairs every coordinator write with the
    // workers' reads (and the workers' shard writes with the
    // coordinator's post-barrier reads).
    std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    std::uint64_t generation_ = 0;
    std::size_t done_count_ = 0;
    bool shutdown_ = false;
    bool profile_ = false;
    Cycles horizon_ = 0;

    Cycles fleet_next_event_ = sim::kNoEvent;
    EpochStats stats_;
};

} // namespace moca::cluster

#endif // MOCA_CLUSTER_PARALLEL_H
