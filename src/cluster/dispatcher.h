/**
 * @file
 * Cluster front-end dispatchers: the pluggable task-placement policy
 * of the fleet simulator.  A dispatcher sees one arriving task plus a
 * load snapshot of every SoC and picks the SoC the task is queued on;
 * it is the datacenter-level counterpart of the per-SoC scheduling
 * Policy.
 *
 * Dispatchers are string-keyed self-registering factories mirroring
 * exp::PolicyRegistry, with the same spec grammar
 *
 *     name[:key=value[,key=value...]]
 *
 * (parsed by exp::PolicySpec) and the same error discipline: unknown
 * names fail with a did-you-mean suggestion, undeclared parameters
 * list the declared ones, and `--list-dispatchers` prints the
 * catalogue.  Built-ins:
 *
 *  - `rr`           round-robin (the placement-oblivious baseline)
 *  - `random`       seeded uniform choice
 *  - `least-loaded` minimum queue depth (or outstanding work)
 *  - `p2c`          power-of-two-choices: the classic
 *                   O(1)-information balancer
 *  - `qos-aware`    routes high-priority / QoS-Hard tasks to the
 *                   least-contended SoC, everything else round-robin
 *
 * Registration is open via `DispatcherRegistrar`, so benches and
 * downstream users can plug in placement strategies without touching
 * this file.
 */

#ifndef MOCA_CLUSTER_DISPATCHER_H
#define MOCA_CLUSTER_DISPATCHER_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/workload.h"
#include "exp/registry.h"

namespace moca::cluster {

/** Load snapshot of one SoC at a placement decision. */
struct SocLoad
{
    int socIdx = 0;
    Cycles now = 0;       ///< The SoC's local simulated time.
    int waiting = 0;      ///< Queued (waiting/paused) jobs.
    int running = 0;      ///< Jobs currently on tiles.
    int freeTiles = 0;
    int numTiles = 0;
    int tasksAssigned = 0; ///< Tasks ever placed here.
    /** Placed-but-unfinished task count (queue-depth feedback). */
    int outstanding() const { return waiting + running; }
    /** MACs of placed-but-unfinished tasks (work feedback). */
    double outstandingMacs = 0.0;
};

/** A cluster task-placement policy.  One instance per cluster run;
 *  implementations may keep state (round-robin cursors, RNGs) and are
 *  only ever called from the (single-threaded) cluster loop. */
class Dispatcher
{
  public:
    virtual ~Dispatcher() = default;

    virtual const char *name() const = 0;

    /** Pick the SoC index in [0, socs.size()) the task is placed on.
     *  Called once per task, in arrival order. */
    virtual int place(const ClusterTask &task,
                      const std::vector<SocLoad> &socs) = 0;
};

/** Dispatcher specs reuse the policy-spec grammar and parser. */
using DispatcherSpec = exp::PolicySpec;
/** ... and the same parameter-schema entry type. */
using DispatcherParam = exp::PolicyParam;

/** Everything the registry knows about one dispatcher. */
struct DispatcherInfo
{
    std::string name;
    std::string description;
    std::vector<DispatcherParam> params;

    /**
     * Build the dispatcher for a fleet of `num_socs` SoCs with an
     * already-validated spec.  `seed` feeds any randomized strategy
     * (random, p2c) so cluster runs stay reproducible.
     */
    std::function<std::unique_ptr<Dispatcher>(
        int num_socs, std::uint64_t seed, const DispatcherSpec &spec)>
        factory;
};

/**
 * The process-wide dispatcher registry, mirroring exp::PolicyRegistry
 * (iteration order is registration order, built-ins first).  The
 * shared machinery lives in the moca::SpecRegistry base.
 */
class DispatcherRegistry : public moca::SpecRegistry<DispatcherInfo>
{
  public:
    static DispatcherRegistry &instance();

    /** Parse, validate, and build a dispatcher from a spec string. */
    std::unique_ptr<Dispatcher> make(const std::string &spec,
                                     int num_socs,
                                     std::uint64_t seed) const;
    std::unique_ptr<Dispatcher> make(const DispatcherSpec &spec,
                                     int num_socs,
                                     std::uint64_t seed) const;

    /**
     * Full spec validation: grammar, name, parameter keys, and —
     * unlike PolicyRegistry::validate, whose parameter ranges depend
     * on the SoC a policy eventually runs on — parameter *values*,
     * by trial-building the dispatcher for a 1-SoC fleet.  Fatal
     * with actionable messages, before any simulation work starts.
     */
    void validate(const std::string &spec) const;

  private:
    DispatcherRegistry()
        : SpecRegistry("dispatcher", "dispatchers",
                       "--list-dispatchers")
    {
    }
};

/**
 * Link-time self-registration hook:
 *
 *     static cluster::DispatcherRegistrar reg({"mine", "...", {...},
 *                                              factory});
 */
struct DispatcherRegistrar
{
    explicit DispatcherRegistrar(DispatcherInfo info)
    {
        DispatcherRegistry::instance().add(std::move(info));
    }
};

} // namespace moca::cluster

#endif // MOCA_CLUSTER_DISPATCHER_H
