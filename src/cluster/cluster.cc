#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "cluster/parallel.h"
#include "common/log.h"
#include "common/walltime.h"
#include "exp/oracle.h"
#include "exp/registry.h"
#include "obs/capture.h"
#include "sim/soc.h"

namespace moca::cluster {

ClusterConfig
ClusterConfig::homogeneous(int n, const sim::SocConfig &soc)
{
    if (n < 1)
        fatal("cluster needs at least one SoC (got %d)", n);
    ClusterConfig cfg;
    cfg.socs.assign(static_cast<std::size_t>(n), soc);
    return cfg;
}

ClusterResult
runCluster(const ClusterConfig &cfg,
           const std::vector<ClusterTask> &tasks)
{
    const std::size_t n = cfg.socs.size();
    if (n == 0)
        fatal("cluster needs at least one SoC");
    for (std::size_t i = 1; i < tasks.size(); ++i)
        if (tasks[i].arrival < tasks[i - 1].arrival)
            fatal("cluster task stream must be sorted by arrival "
                  "(task %d at %llu after task %d at %llu)",
                  tasks[i].id,
                  static_cast<unsigned long long>(tasks[i].arrival),
                  tasks[i - 1].id,
                  static_cast<unsigned long long>(
                      tasks[i - 1].arrival));

    // Each SoC runs its own policy instance (policies are stateful).
    // Policies are declared before the SoCs that reference them so
    // they outlive the simulators.
    std::vector<std::unique_ptr<sim::Policy>> policies;
    std::vector<std::unique_ptr<sim::Soc>> socs;
    policies.reserve(n);
    socs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        sim::SocConfig soc_cfg = cfg.socs[i];
        soc_cfg.socId = static_cast<int>(i);
        policies.push_back(
            exp::PolicyRegistry::instance().make(cfg.policy, soc_cfg));
        socs.push_back(
            std::make_unique<sim::Soc>(soc_cfg, *policies.back()));
        if (cfg.capture)
            socs.back()->trace().enable();
        socs.back()->beginRun(cfg.maxCycles);
    }
    const auto dispatcher = DispatcherRegistry::instance().make(
        cfg.dispatcher, static_cast<int>(n), cfg.dispatcherSeed);

    std::vector<int> placed(n, 0);
    std::vector<double> outstanding_macs(n, 0.0);
    std::vector<std::size_t> seen_results(n, 0);

    // Completed jobs retire their work from the dispatcher's
    // outstanding-MACs feedback signal.
    const auto harvest = [&](std::size_t i) {
        const auto &results = socs[i]->results();
        for (std::size_t r = seen_results[i]; r < results.size(); ++r)
            outstanding_macs[i] -= static_cast<double>(
                results[r].spec.model->totalMacs());
        seen_results[i] = results.size();
    };

    // The conservative-PDES engine advances the fleet between
    // dispatch points: SoCs share nothing until the next arrival, so
    // every worker advances its shard to the arrival horizon and the
    // barrier hands a quiescent fleet back to this (single-threaded)
    // dispatcher loop.  harvest runs on the worker that owns the SoC
    // — it only touches that SoC's own feedback slots.
    std::vector<sim::Soc *> fleet;
    fleet.reserve(n);
    for (const auto &soc : socs)
        fleet.push_back(soc.get());
    ParallelEngine engine(std::move(fleet), cfg.jobs, harvest,
                          cfg.profile);

    // Capture-mode epoch spans: delta the engine's epoch/stall
    // counters around each advance so the exporter can draw the
    // PDES timeline.  Plain delegation when capture is off.
    Cycles last_horizon = 0;
    const auto advance = [&](Cycles horizon) {
        if (!cfg.capture) {
            engine.advanceFleet(horizon);
            return;
        }
        const EpochStats before = engine.stats();
        engine.advanceFleet(horizon);
        const EpochStats &after = engine.stats();
        Cycles end = horizon;
        if (horizon == sim::kNoHorizon) {
            end = last_horizon;
            for (const auto &soc : socs)
                end = std::max(end, soc->now());
        }
        if (after.epochs > before.epochs)
            cfg.capture->epochs.push_back(
                {last_horizon, end,
                 after.socsStepped - before.socsStepped, false});
        else if (after.horizonStalls > before.horizonStalls)
            cfg.capture->epochs.push_back({last_horizon, end, 0, true});
        last_horizon = end;
    };

    WallTimer dispatch_timer;
    double dispatch_sec = 0.0;

    for (const ClusterTask &task : tasks) {
        advance(task.arrival);
        if (cfg.profile)
            dispatch_timer.restart();

        std::vector<SocLoad> loads(n);
        for (std::size_t i = 0; i < n; ++i) {
            SocLoad &l = loads[i];
            l.socIdx = static_cast<int>(i);
            l.now = socs[i]->now();
            l.waiting = static_cast<int>(socs[i]->waitingCount());
            l.running = static_cast<int>(socs[i]->runningCount());
            l.freeTiles = socs[i]->freeTiles();
            l.numTiles = socs[i]->config().numTiles;
            l.tasksAssigned = placed[i];
            l.outstandingMacs = outstanding_macs[i];
        }

        const int k = dispatcher->place(task, loads);
        if (k < 0 || k >= static_cast<int>(n))
            fatal("dispatcher '%s' placed task %d on SoC %d of %zu",
                  cfg.dispatcher.c_str(), task.id, k, n);

        sim::JobSpec spec;
        spec.id = static_cast<int>(socs[static_cast<std::size_t>(
            k)]->jobs().size());
        spec.model = &dnn::getModel(task.model);
        spec.dispatch = task.arrival;
        spec.priority = task.priority;
        spec.slaLatency = task.slaLatency;
        socs[static_cast<std::size_t>(k)]->injectJob(spec);
        placed[static_cast<std::size_t>(k)]++;
        outstanding_macs[static_cast<std::size_t>(k)] +=
            static_cast<double>(spec.model->totalMacs());
        engine.noteInjected(static_cast<std::size_t>(k));
        if (cfg.profile)
            dispatch_sec += dispatch_timer.restart();
    }

    advance(sim::kNoHorizon); // Drain the fleet.
    for (auto &soc : socs)
        soc->finishRun();

    if (cfg.capture) {
        bool any_sampled = false;
        for (const auto &soc : socs) {
            const auto &events = soc->trace().events();
            cfg.capture->socEvents.insert(
                cfg.capture->socEvents.end(), events.begin(),
                events.end());
            if (soc->sampler())
                any_sampled = true;
        }
        if (any_sampled)
            for (const auto &soc : socs)
                cfg.capture->socSeries.push_back(
                    soc->sampler() ? soc->sampler()->series()
                                   : obs::Timeseries{});
    }

    // --- Aggregate ----------------------------------------------------

    ClusterResult res;
    res.dispatcher = cfg.dispatcher;
    res.policy = cfg.policy;
    res.numSocs = static_cast<int>(n);
    res.numTasks = tasks.size();
    res.epochs = engine.stats().epochs;
    res.horizonStalls = engine.stats().horizonStalls;
    res.meanSocsStepped = engine.stats().meanSocsStepped();
    if (cfg.profile) {
        engine.phaseTotals(res.phases.shardAdvanceSec,
                           res.phases.barrierWaitSec);
        res.phases.dispatchSec = dispatch_sec;
    }
    res.perSoc.resize(n);

    std::vector<double> latencies, norm_latencies;
    latencies.reserve(tasks.size());
    norm_latencies.reserve(tasks.size());
    std::size_t met = 0, high_total = 0, high_met = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const sim::Soc &soc = *socs[i];
        const sim::SocConfig &soc_cfg = cfg.socs[i];
        SocShare &share = res.perSoc[i];
        share.tasks = placed[i];
        share.metrics = metrics::computeMetrics(
            soc.results(), [&](dnn::ModelId id) {
                return exp::isolatedLatency(id, soc_cfg.numTiles,
                                            soc_cfg);
            });
        share.dramBusyFraction = soc.stats().dramBusyFraction;
        share.simSteps = soc.stats().quanta;
        res.simSteps += share.simSteps;
        res.stp += share.metrics.stp;

        for (const auto &job : soc.results()) {
            share.makespan = std::max(share.makespan, job.finish);
            const auto latency =
                static_cast<double>(job.latency());
            latencies.push_back(latency);
            const Cycles iso = exp::isolatedLatency(
                dnn::modelIdFromName(job.spec.model->name()),
                soc_cfg.numTiles, soc_cfg);
            norm_latencies.push_back(latency /
                                     static_cast<double>(iso));
            if (job.slaMet())
                ++met;
            if (workload::priorityGroup(job.spec.priority) ==
                workload::PriorityGroup::High) {
                ++high_total;
                if (job.slaMet())
                    ++high_met;
            }
        }
        res.makespan = std::max(res.makespan, share.makespan);
    }

    const std::size_t total = latencies.size();
    if (total != tasks.size())
        panic("cluster lost tasks: %zu placed, %zu completed",
              tasks.size(), total);
    res.slaRate = total
        ? static_cast<double>(met) / static_cast<double>(total)
        : 0.0;
    res.slaRateHigh = high_total
        ? static_cast<double>(high_met) /
            static_cast<double>(high_total)
        : 0.0;
    res.latency = percentileSummary(latencies);
    res.normLatency = percentileSummary(norm_latencies);
    if (res.makespan > 0)
        res.goodput = static_cast<double>(met) * 1e9 /
            static_cast<double>(res.makespan);

    double mean_tasks = 0.0;
    for (int p : placed)
        mean_tasks += p;
    mean_tasks /= static_cast<double>(n);
    if (mean_tasks > 0.0) {
        double var = 0.0;
        for (int p : placed) {
            const double d = static_cast<double>(p) - mean_tasks;
            var += d * d;
        }
        res.balanceCv = std::sqrt(var / static_cast<double>(n)) /
            mean_tasks;
    }
    return res;
}

} // namespace moca::cluster
