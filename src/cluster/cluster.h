/**
 * @file
 * Cluster fleet simulator: co-simulates N independent `sim::Soc`
 * instances (homogeneous or heterogeneous configurations) under one
 * cluster-level event loop, with a front-end `Dispatcher` deciding
 * task placement at arrival time.
 *
 * Execution model.  SoCs share nothing — each owns its tiles, L2, and
 * DRAM channel — so between cluster-level events (task arrivals) every
 * SoC evolves independently.  The loop therefore advances each busy
 * SoC through its own next-event times up to the next arrival (the
 * exact clamp `Soc::stepOnce(horizon)` provides), snapshots every
 * SoC's load, asks the dispatcher for a placement, injects the task
 * into the chosen SoC at its exact dispatch cycle, and repeats;
 * after the last arrival the fleet drains to completion.  The
 * advance between dispatch points runs on the conservative-PDES
 * engine (cluster/parallel.h): SoCs are sharded across
 * `ClusterConfig::jobs` workers with an epoch barrier at every
 * arrival, and the run is bit-identical for every jobs value (each
 * SoC's own kernel is deterministic and owned by one worker), so a
 * cluster run is a pure function of (configs, dispatcher spec, task
 * stream, seed) — and a 1-SoC cluster replays the single-SoC
 * scenario path bit-identically.
 *
 * Results come back as a `ClusterResult`: fleet-level SLA rate,
 * p50/p95/p99 end-to-end latency, total STP, a per-SoC utilization /
 * load-balance breakdown, and the per-SoC metrics themselves.
 */

#ifndef MOCA_CLUSTER_CLUSTER_H
#define MOCA_CLUSTER_CLUSTER_H

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/dispatcher.h"
#include "cluster/workload.h"
#include "common/stats.h"
#include "metrics/metrics.h"
#include "sim/config.h"

namespace moca::obs {
struct Capture;
}

namespace moca::cluster {

/** Configuration of one cluster run. */
struct ClusterConfig
{
    /** Per-SoC configurations; size() is the fleet size. */
    std::vector<sim::SocConfig> socs;

    /** Per-SoC scheduling policy spec (exp::PolicyRegistry); every
     *  SoC runs its own instance. */
    std::string policy = "moca";

    /** Front-end dispatcher spec (DispatcherRegistry). */
    std::string dispatcher = "rr";

    /** Seed for randomized dispatchers (random, p2c). */
    std::uint64_t dispatcherSeed = 1;

    /**
     * Worker threads of the conservative-PDES engine that advances
     * the fleet between dispatch points (cluster/parallel.h).  SoCs
     * are sharded across workers; results are bit-identical for
     * every value (jobs=1 runs the same engine inline, threadless).
     * Must be >= 1 (fatal otherwise).
     */
    int jobs = 1;

    /** Per-SoC deadlock bound; 0 uses each SocConfig's maxCycles. */
    Cycles maxCycles = 0;

    /**
     * Wall-clock phase profiling (see ClusterResult::phases and
     * cluster/parallel.h phaseTotals).  Diagnostic only; leave off
     * for timing=0 determinism baselines — the fields it fills are
     * wall-clock and would be nonzero.
     */
    bool profile = false;

    /**
     * Telemetry capture bag (obs/capture.h): when non-null the run
     * enables every SoC's TraceRecorder (stamped with its slot id),
     * records PDES epoch/stall spans, and copies out any sampled
     * timeseries.  Observational only — results are bit-identical
     * with or without it.  The capture is written by this run's
     * coordinator alone: never share one across concurrent cells.
     */
    obs::Capture *capture = nullptr;

    /** A homogeneous fleet of `n` copies of `soc`. */
    static ClusterConfig homogeneous(int n, const sim::SocConfig &soc);
};

/**
 * Wall-clock breakdown of one fleet run's execution phases (zeros
 * unless ClusterConfig::profile): where the run actually spent its
 * time — workers advancing SoC shards, workers parked at the epoch
 * barrier, and the coordinator placing/injecting tasks.
 */
struct PhaseBreakdown
{
    double shardAdvanceSec = 0.0; ///< Workers advancing their SoCs.
    double barrierWaitSec = 0.0;  ///< Workers waiting at the barrier.
    double dispatchSec = 0.0;     ///< Coordinator placement+injection.
};

/** Per-SoC share of a cluster run. */
struct SocShare
{
    int tasks = 0;          ///< Tasks the dispatcher placed here.
    metrics::RunMetrics metrics; ///< Per-SoC SLA/STP/fairness.
    Cycles makespan = 0;    ///< Cycle the SoC's last job finished.
    double dramBusyFraction = 0.0;
    std::uint64_t simSteps = 0;
};

/** Outcome of one cluster run. */
struct ClusterResult
{
    std::string dispatcher; ///< Dispatcher spec the run used.
    std::string policy;     ///< Per-SoC policy spec.
    int numSocs = 0;
    std::size_t numTasks = 0;

    double slaRate = 0.0;     ///< Fleet SLA satisfaction in [0, 1].
    double slaRateHigh = 0.0; ///< ... of the p-High priority group.

    /** End-to-end latency tails in cycles (queue wait + runtime). */
    PercentileSummary latency;
    /** ... normalized to each job's isolated full-SoC latency. */
    PercentileSummary normLatency;

    double stp = 0.0;    ///< Fleet system throughput (sum of per-SoC).
    Cycles makespan = 0; ///< Cycle the last job fleet-wide finished.

    /**
     * Goodput: completed-within-SLO tasks per second at the 1 GHz
     * Table II clock (SLA-met completions * 1e9 / makespan).  Under
     * the closed-loop serving layer (serve/serve.h) only client-
     * observed responses count — a completion whose client already
     * timed out is wasted work, not goodput.
     */
    double goodput = 0.0;

    /**
     * Serving-control-loop outcome rates, all fractions of the
     * attempts the front-end handled.  Always zero for plain
     * open-loop runCluster runs (there is no client to time out and
     * no admission controller to shed); the closed-loop serve driver
     * fills them from its counters.
     */
    double shedRate = 0.0;    ///< Attempts rejected by admission.
    double retryRate = 0.0;   ///< Attempts that were client retries.
    double timeoutRate = 0.0; ///< Attempts whose client timed out.
    std::uint64_t shedTasks = 0;     ///< Admission rejections.
    std::uint64_t deferredTasks = 0; ///< Admission deferrals.
    std::uint64_t retryTasks = 0;    ///< Client retry attempts.
    std::uint64_t timeoutTasks = 0;  ///< Client-side timeouts.

    /**
     * Load-balance quality: coefficient of variation (stddev/mean) of
     * per-SoC placed-task counts.  0 = perfectly balanced; rises as
     * the dispatcher concentrates load.
     */
    double balanceCv = 0.0;

    std::uint64_t simSteps = 0; ///< Total kernel rounds, all SoCs.

    /**
     * Lookahead quality of the conservative-PDES fleet loop
     * (cluster/parallel.h): barrier epochs executed, mean SoCs
     * advanced per epoch, and horizon stalls (would-be epochs whose
     * lookahead window held no SoC activity — simultaneous arrivals
     * or a drained fleet).  Identical across ClusterConfig::jobs
     * values, like everything else here.
     */
    std::uint64_t epochs = 0;
    std::uint64_t horizonStalls = 0;
    double meanSocsStepped = 0.0;

    /** Wall-clock phase profile (zeros unless cfg.profile; excluded
     *  from timing=0 sinks like every wall-clock field). */
    PhaseBreakdown phases;

    std::vector<SocShare> perSoc;
};

/**
 * Run one cluster: place and execute `tasks` (sorted by arrival) on
 * the fleet described by `cfg`.  Fatal on empty fleets, unknown
 * policy/dispatcher specs, or an unsorted task stream.
 */
ClusterResult runCluster(const ClusterConfig &cfg,
                         const std::vector<ClusterTask> &tasks);

} // namespace moca::cluster

#endif // MOCA_CLUSTER_CLUSTER_H
