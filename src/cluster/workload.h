/**
 * @file
 * Open-loop workload synthesis for the cluster fleet simulator: a
 * seeded generator of 100k+-task request streams, so datacenter-scale
 * traces are *synthesized* from a handful of knobs instead of
 * hand-written.  "Open-loop" means arrivals are driven by an external
 * process — the stream does not slow down when the fleet falls behind,
 * which is exactly the regime where dispatcher quality shows.
 *
 * Three arrival processes are offered:
 *
 *  - `poisson`: memoryless arrivals at the calibrated mean rate.
 *  - `mmpp`: a two-state Markov-modulated Poisson process (bursty) —
 *    the stream alternates between a base state and a burst state
 *    whose rate is `burstRateBoost`x higher; episode lengths are
 *    geometric with mean `burstLen` arrivals, and the base rate is
 *    chosen so the long-run rate still matches the load factor.
 *  - `diurnal`: a sinusoidally rate-modulated Poisson process with
 *    `diurnalPeriods` full day/night swings over the trace and
 *    relative amplitude `diurnalAmplitude`.
 *
 * Each task draws a model from the mix (uniform), a static priority
 * from the Google-trace-shaped distribution, and a QoS class from the
 * configured L/M/H ratio; its SLA target is the paper's formula
 * (qosMultiplier x qosScale x isolated single-tile latency).  Every
 * draw comes from one seeded xoshiro stream, so a SynthConfig is a
 * complete, reproducible description of a cluster trace.
 */

#ifndef MOCA_CLUSTER_WORKLOAD_H
#define MOCA_CLUSTER_WORKLOAD_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "dnn/model_zoo.h"
#include "sim/job.h"
#include "workload/workload.h"

namespace moca::cluster {

/** One synthesized inference request, before placement on a SoC. */
struct ClusterTask
{
    int id = -1;                ///< Dense fleet-wide id.
    dnn::ModelId model = dnn::ModelId::SqueezeNet;
    Cycles arrival = 0;         ///< Cycle the request reaches the
                                ///< cluster front-end.
    int priority = 0;           ///< Static priority, 0..11.
    workload::QosLevel qos = workload::QosLevel::Medium;
    Cycles slaLatency = 0;      ///< QoS target (from arrival).
};

/** Arrival process of the synthesized stream. */
enum class ArrivalProcess
{
    Poisson, ///< Memoryless arrivals (default).
    Mmpp,    ///< Two-state Markov-modulated Poisson (bursty).
    Diurnal, ///< Sinusoidal day/night rate modulation.
};

/** Printable process name ("poisson", "mmpp", "diurnal"). */
const char *arrivalProcessName(ArrivalProcess process);

/** Parse a process name; fatal (listing the options) when unknown. */
ArrivalProcess arrivalProcessFromName(const std::string &name);

/** Parameters of one synthesized cluster trace. */
struct SynthConfig
{
    ArrivalProcess process = ArrivalProcess::Poisson;
    int numTasks = 100'000;

    /** Model mix: explicit ids, or (when empty) the models of `set`. */
    std::vector<dnn::ModelId> mix;
    workload::WorkloadSet set = workload::WorkloadSet::C;

    /** QoS class ratio over L/M/H (normalized internally). */
    double qosLightShare = 0.25;
    double qosMediumShare = 0.50;
    double qosHardShare = 0.25;

    /** QoS-M target = qosScale x isolated single-tile latency. */
    double qosScale = 4.0;

    /**
     * Offered load as a fraction of aggregate *fleet* tile capacity:
     * arrival rate = loadFactor * fleetTiles / mean isolated
     * single-tile latency of the mix (the same calibration the
     * single-SoC TraceConfig uses, scaled to the fleet).
     */
    double loadFactor = 0.8;
    int fleetTiles = 8; ///< Total tiles across all SoCs.

    // --- MMPP (bursty) knobs ------------------------------------------

    /** Burst-state arrival-rate multiplier (> 1). */
    double burstRateBoost = 8.0;
    /** Long-run fraction of arrivals drawn in the burst state. */
    double burstDuty = 0.4;
    /** Mean arrivals per burst episode (geometric). */
    double burstLen = 50.0;

    // --- Diurnal knobs ------------------------------------------------

    /** Relative rate swing in [0, 1): rate(t) = mean*(1 + A*sin). */
    double diurnalAmplitude = 0.6;
    /** Full day/night periods over the expected trace duration. */
    double diurnalPeriods = 4.0;

    std::uint64_t seed = 1;
};

/**
 * Draw one task's *attributes* — model (uniform over `models`),
 * static priority (Google-trace-shaped distribution), QoS class
 * (categorical over `qos_shares`, L/M/H order), and the paper's SLA
 * target (qosMultiplier x qos_scale x isolated single-tile latency)
 * — from `rng`, leaving id and arrival untouched.  Shared by the
 * open-loop synthesizer below and the closed-loop
 * serve::ClientPool, so both regimes sample requests from exactly
 * the same population.
 */
ClusterTask
drawTaskAttributes(Rng &rng, const std::vector<dnn::ModelId> &models,
                   const std::vector<double> &qos_shares,
                   double qos_scale,
                   const std::function<Cycles(dnn::ModelId)>
                       &isolated_latency);

/**
 * Synthesize the task stream for `cfg` (sorted by arrival; ids are
 * dense in arrival order).
 *
 * @param isolated_latency oracle returning each model's isolated
 *        single-tile latency in cycles (SLA targets and the
 *        arrival-rate calibration), as workload::generateTrace takes.
 */
std::vector<ClusterTask>
synthesizeTasks(const SynthConfig &cfg,
                const std::function<Cycles(dnn::ModelId)> &isolated_latency);

/**
 * Wrap a single-SoC generated trace (exp::makeTrace output) as
 * cluster tasks, so a fleet can replay exactly the job stream a
 * single-SoC scenario ran.  The QoS *class* is not recorded in a
 * JobSpec, so tasks come back as QoS-M; the SLA target itself is
 * copied verbatim and is what the metrics use.
 */
std::vector<ClusterTask>
tasksFromJobSpecs(const std::vector<sim::JobSpec> &specs);

} // namespace moca::cluster

#endif // MOCA_CLUSTER_WORKLOAD_H
