#include "cluster/workload.h"

#include <cmath>

#include "common/log.h"
#include "common/rng.h"

namespace moca::cluster {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

} // anonymous namespace

const char *
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::Mmpp: return "mmpp";
      case ArrivalProcess::Diurnal: return "diurnal";
    }
    return "?";
}

ArrivalProcess
arrivalProcessFromName(const std::string &name)
{
    if (name == "poisson")
        return ArrivalProcess::Poisson;
    if (name == "mmpp" || name == "bursty")
        return ArrivalProcess::Mmpp;
    if (name == "diurnal")
        return ArrivalProcess::Diurnal;
    fatal("unknown arrival process '%s'; expected poisson, mmpp "
          "(bursty), or diurnal", name.c_str());
}

ClusterTask
drawTaskAttributes(Rng &rng, const std::vector<dnn::ModelId> &models,
                   const std::vector<double> &qos_shares,
                   double qos_scale,
                   const std::function<Cycles(dnn::ModelId)>
                       &isolated_latency)
{
    ClusterTask task;
    task.model = models[static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(models.size()) - 1))];
    task.priority = static_cast<int>(
        rng.categorical(workload::priorityWeights()));
    switch (rng.categorical(qos_shares)) {
      case 0: task.qos = workload::QosLevel::Light; break;
      case 1: task.qos = workload::QosLevel::Medium; break;
      default: task.qos = workload::QosLevel::Hard; break;
    }
    task.slaLatency = static_cast<Cycles>(
        workload::qosMultiplier(task.qos) * qos_scale *
        static_cast<double>(isolated_latency(task.model)));
    return task;
}

std::vector<ClusterTask>
synthesizeTasks(const SynthConfig &cfg,
                const std::function<Cycles(dnn::ModelId)> &isolated_latency)
{
    if (cfg.numTasks < 1)
        fatal("cluster trace needs at least one task");
    if (cfg.loadFactor <= 0.0)
        fatal("loadFactor must be positive");
    if (cfg.fleetTiles < 1)
        fatal("fleetTiles must be >= 1");

    const std::vector<dnn::ModelId> &models =
        cfg.mix.empty() ? workload::workloadSetModels(cfg.set)
                        : cfg.mix;
    if (models.empty())
        fatal("cluster trace needs a non-empty model mix");

    const std::vector<double> qos_shares = {
        cfg.qosLightShare, cfg.qosMediumShare, cfg.qosHardShare};
    if (qos_shares[0] < 0 || qos_shares[1] < 0 || qos_shares[2] < 0 ||
        qos_shares[0] + qos_shares[1] + qos_shares[2] <= 0.0)
        fatal("QoS class shares must be non-negative and sum > 0");

    Rng rng(cfg.seed);

    // Rate calibration mirrors workload::generateTrace, scaled to the
    // whole fleet's tile capacity.
    double mean_iso = 0.0;
    for (dnn::ModelId id : models)
        mean_iso += static_cast<double>(isolated_latency(id));
    mean_iso /= static_cast<double>(models.size());
    const double mean_gap =
        mean_iso / (cfg.loadFactor * cfg.fleetTiles);

    // MMPP: the base state is *slower* than the mean so that drawing
    // `burstDuty` of the arrivals from the `burstRateBoost`x-faster
    // burst state keeps the long-run rate on target:
    // (1-duty)*base_gap + duty*base_gap/boost == mean_gap.
    const double boost = std::max(1.0, cfg.burstRateBoost);
    const double burst_len = std::max(1.0, cfg.burstLen);
    // The embedded chain cannot spend more than
    // burstLen/(burstLen+1) of its arrivals bursting (base episodes
    // are at least one arrival long); clamp the requested duty to
    // what is achievable so the rate calibration below matches the
    // dynamics actually simulated.
    const double duty =
        std::min({0.95, std::max(0.0, cfg.burstDuty),
                  burst_len / (burst_len + 1.0)});
    const double base_gap =
        mean_gap / ((1.0 - duty) + duty / boost);
    const double burst_exit_p = 1.0 / burst_len;
    // duty == 0 (or boost == 1) disables bursts outright: the stream
    // degenerates to plain Poisson at the calibrated rate.
    const bool bursts = duty > 0.0 && boost > 1.0;
    const double base_exit_p =
        bursts ? duty / (burst_len * (1.0 - duty)) : 0.0;

    // Diurnal: period from the expected trace duration.
    const double amp =
        std::min(0.95, std::max(0.0, cfg.diurnalAmplitude));
    const double period = cfg.numTasks * mean_gap /
        std::max(1e-9, cfg.diurnalPeriods);

    std::vector<ClusterTask> tasks;
    tasks.reserve(static_cast<std::size_t>(cfg.numTasks));
    double t = 0.0;
    bool burst = false;
    for (int i = 0; i < cfg.numTasks; ++i) {
        switch (cfg.process) {
          case ArrivalProcess::Poisson:
            t += rng.exponential(mean_gap);
            break;
          case ArrivalProcess::Mmpp:
            // Markov chain embedded at arrivals: geometric episode
            // lengths, exponential gaps at the state's rate.
            t += rng.exponential(burst ? base_gap / boost : base_gap);
            if (rng.uniform() < (burst ? burst_exit_p : base_exit_p))
                burst = !burst;
            break;
          case ArrivalProcess::Diurnal: {
            // Rate modulated at the current phase of the day.
            const double rate_scale = 1.0 +
                amp * std::sin(kTwoPi * t / period);
            t += rng.exponential(mean_gap /
                                 std::max(0.05, rate_scale));
            break;
          }
        }

        ClusterTask task = drawTaskAttributes(
            rng, models, qos_shares, cfg.qosScale, isolated_latency);
        task.id = i;
        task.arrival = static_cast<Cycles>(t);
        tasks.push_back(task);
    }
    return tasks;
}

std::vector<ClusterTask>
tasksFromJobSpecs(const std::vector<sim::JobSpec> &specs)
{
    std::vector<ClusterTask> tasks;
    tasks.reserve(specs.size());
    for (const auto &spec : specs) {
        ClusterTask task;
        task.id = spec.id;
        task.model = dnn::modelIdFromName(spec.model->name());
        task.arrival = spec.dispatch;
        task.priority = spec.priority;
        task.qos = workload::QosLevel::Medium;
        task.slaLatency = spec.slaLatency;
        tasks.push_back(task);
    }
    return tasks;
}

} // namespace moca::cluster
