#include "cluster/dispatcher.h"

#include <algorithm>

#include "common/argparse.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/text.h"

namespace moca::cluster {

namespace {

/** Smallest-index SoC minimizing `key` (ties break on index, which
 *  keeps every dispatcher deterministic). */
template <typename Key>
int
argminSoc(const std::vector<SocLoad> &socs, Key key)
{
    int best = 0;
    auto best_key = key(socs[0]);
    for (std::size_t i = 1; i < socs.size(); ++i) {
        const auto k = key(socs[i]);
        if (k < best_key) {
            best_key = k;
            best = static_cast<int>(i);
        }
    }
    return best;
}

class RoundRobinDispatcher : public Dispatcher
{
  public:
    const char *name() const override { return "rr"; }

    int
    place(const ClusterTask &, const std::vector<SocLoad> &socs) override
    {
        return static_cast<int>(cursor_++ % socs.size());
    }

  private:
    std::size_t cursor_ = 0;
};

class RandomDispatcher : public Dispatcher
{
  public:
    explicit RandomDispatcher(std::uint64_t seed) : rng_(seed) {}

    const char *name() const override { return "random"; }

    int
    place(const ClusterTask &, const std::vector<SocLoad> &socs) override
    {
        return static_cast<int>(rng_.uniformInt(
            0, static_cast<std::int64_t>(socs.size()) - 1));
    }

  private:
    Rng rng_;
};

class LeastLoadedDispatcher : public Dispatcher
{
  public:
    explicit LeastLoadedDispatcher(bool by_work) : byWork_(by_work) {}

    const char *name() const override { return "least-loaded"; }

    int
    place(const ClusterTask &, const std::vector<SocLoad> &socs) override
    {
        if (byWork_)
            return argminSoc(socs, [](const SocLoad &s) {
                return s.outstandingMacs;
            });
        // Queue depth, tie-broken toward free capacity.
        return argminSoc(socs, [](const SocLoad &s) {
            return std::make_pair(s.outstanding(), -s.freeTiles);
        });
    }

  private:
    bool byWork_;
};

class PowerOfTwoDispatcher : public Dispatcher
{
  public:
    explicit PowerOfTwoDispatcher(std::uint64_t seed) : rng_(seed) {}

    const char *name() const override { return "p2c"; }

    int
    place(const ClusterTask &, const std::vector<SocLoad> &socs) override
    {
        const auto n = static_cast<std::int64_t>(socs.size());
        if (n == 1)
            return 0;
        // Two distinct probes; the classic exponential improvement
        // over `random` with O(1) load information.
        const auto a = rng_.uniformInt(0, n - 1);
        auto b = rng_.uniformInt(0, n - 2);
        if (b >= a)
            ++b;
        const SocLoad &sa = socs[static_cast<std::size_t>(a)];
        const SocLoad &sb = socs[static_cast<std::size_t>(b)];
        if (sa.outstanding() != sb.outstanding())
            return sa.outstanding() < sb.outstanding()
                ? static_cast<int>(a)
                : static_cast<int>(b);
        return static_cast<int>(std::min(a, b));
    }

  private:
    Rng rng_;
};

class QosAwareDispatcher : public Dispatcher
{
  public:
    QosAwareDispatcher(int prio_min, bool hard_qos)
        : prioMin_(prio_min), hardQos_(hard_qos)
    {
    }

    const char *name() const override { return "qos-aware"; }

    int
    place(const ClusterTask &task,
          const std::vector<SocLoad> &socs) override
    {
        const bool critical = task.priority >= prioMin_ ||
            (hardQos_ && task.qos == workload::QosLevel::Hard);
        if (critical) {
            // Least-contended: fewest co-runners sharing DRAM/L2,
            // then shortest queue behind them.
            return argminSoc(socs, [](const SocLoad &s) {
                return std::make_pair(s.running, s.waiting);
            });
        }
        // Bulk traffic spreads round-robin, leaving the
        // least-contended SoCs for the critical tasks.
        return static_cast<int>(cursor_++ % socs.size());
    }

  private:
    int prioMin_;
    bool hardQos_;
    std::size_t cursor_ = 0;
};

void
registerBuiltins(DispatcherRegistry &reg)
{
    reg.add({
        "rr",
        "round-robin placement (placement-oblivious baseline)",
        {},
        [](int, std::uint64_t, const DispatcherSpec &) {
            return std::make_unique<RoundRobinDispatcher>();
        },
    });
    reg.add({
        "random",
        "seeded uniform-random placement",
        {},
        [](int, std::uint64_t seed, const DispatcherSpec &) {
            return std::make_unique<RandomDispatcher>(seed);
        },
    });
    reg.add({
        "least-loaded",
        "global minimum of queue depth (or outstanding work)",
        {{"by", "depth|work", "depth",
          "load signal: queued-task depth or outstanding MACs"}},
        [](int, std::uint64_t, const DispatcherSpec &spec) {
            const std::string by = spec.param("by", "depth");
            if (by != "depth" && by != "work")
                fatal("least-loaded: by=%s (expected depth or work)",
                      by.c_str());
            return std::make_unique<LeastLoadedDispatcher>(
                by == "work");
        },
    });
    reg.add({
        "p2c",
        "power-of-two-choices: probe two random SoCs, take the "
        "shorter queue",
        {},
        [](int, std::uint64_t seed, const DispatcherSpec &) {
            return std::make_unique<PowerOfTwoDispatcher>(seed);
        },
    });
    reg.add({
        "qos-aware",
        "high-priority / QoS-Hard tasks to the least-contended SoC, "
        "bulk traffic round-robin",
        {{"prio_min", "int", "9",
          "lowest priority treated as critical (p-High = 9..11)"},
         {"hard_qos", "bool", "1",
          "also treat QoS-Hard tasks as critical"}},
        [](int, std::uint64_t, const DispatcherSpec &spec) {
            const int prio_min = static_cast<int>(parseIntValue(
                "qos-aware:prio_min",
                spec.param("prio_min", "9")));
            const bool hard_qos = parseBoolValue(
                "qos-aware:hard_qos",
                spec.param("hard_qos", "1"));
            return std::make_unique<QosAwareDispatcher>(prio_min,
                                                        hard_qos);
        },
    });
}

} // anonymous namespace

DispatcherRegistry &
DispatcherRegistry::instance()
{
    // detlint: allow(R4) magic-static init; read-only after startup
    static DispatcherRegistry reg = [] {
        DispatcherRegistry r;
        registerBuiltins(r);
        return r;
    }();
    return reg;
}

std::unique_ptr<Dispatcher>
DispatcherRegistry::make(const DispatcherSpec &spec, int num_socs,
                         std::uint64_t seed) const
{
    if (num_socs < 1)
        fatal("dispatcher '%s' needs at least one SoC",
              spec.name.c_str());
    return checkSpec(spec).factory(num_socs, seed, spec);
}

std::unique_ptr<Dispatcher>
DispatcherRegistry::make(const std::string &spec, int num_socs,
                         std::uint64_t seed) const
{
    return make(DispatcherSpec::parse(spec, "dispatcher"), num_socs,
                seed);
}

void
DispatcherRegistry::validate(const std::string &spec) const
{
    // Dispatcher parameters carry no SoC-configuration dependence,
    // so a trial build catches bad *values* up front too — before a
    // sweep spends minutes synthesizing a 100k-task stream only to
    // die in a worker thread.
    (void)make(DispatcherSpec::parse(spec, "dispatcher"), 1, 0);
}

} // namespace moca::cluster
