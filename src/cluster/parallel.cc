#include "cluster/parallel.h"

#include <algorithm>

#include "common/log.h"

namespace moca::cluster {

ParallelEngine::ParallelEngine(
    std::vector<sim::Soc *> socs, int jobs,
    std::function<void(std::size_t)> on_advanced, bool profile)
    : socs_(std::move(socs)), on_advanced_(std::move(on_advanced)),
      profile_(profile)
{
    if (jobs < 1)
        fatal("cluster jobs must be >= 1 (got %d); 0 workers cannot "
              "advance a fleet", jobs);
    if (socs_.empty())
        fatal("parallel engine needs at least one SoC");
    for (std::size_t i = 0; i < socs_.size(); ++i)
        if (socs_[i] == nullptr)
            fatal("parallel engine: SoC %zu is null", i);
    active_.assign(socs_.size(), 1);

    // Contiguous, near-equal shards: SoC i belongs to one shard for
    // the whole run, so every SoC is only ever touched by one worker
    // and the shard layout is a pure function of (fleet size, jobs).
    const std::size_t shards = std::min<std::size_t>(
        socs_.size(), static_cast<std::size_t>(jobs));
    const std::size_t base = socs_.size() / shards;
    const std::size_t rem = socs_.size() % shards;
    shards_.resize(shards);
    std::size_t at = 0;
    for (std::size_t s = 0; s < shards; ++s) {
        shards_[s].begin = at;
        at += base + (s < rem ? 1 : 0);
        shards_[s].end = at;
    }

    // The initial fleet bound, reduced in index order like every
    // later one (a fresh SoC with no jobs reports kNoEvent — the
    // epochs before its first placement are pure dispatcher work).
    for (Shard &shard : shards_) {
        for (std::size_t i = shard.begin; i < shard.end; ++i)
            shard.minNextEvent = std::min(
                shard.minNextEvent, socs_[i]->nextEventTime());
    }
    reduceShardMinima();

    // One shard runs inline on the coordinator; only a genuinely
    // sharded fleet pays for threads.
    if (shards > 1) {
        workers_.reserve(shards);
        for (std::size_t s = 0; s < shards; ++s)
            workers_.emplace_back(
                [this, s]() { workerLoop(s); });
    }
}

ParallelEngine::~ParallelEngine()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            shutdown_ = true;
        }
        cv_work_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }
}

void
ParallelEngine::runShard(Shard &shard)
{
    WallTimer timer;
    shard.minNextEvent = sim::kNoEvent;
    shard.stepped = 0;
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
        if (active_[i] == 0)
            continue;
        sim::Soc &soc = *socs_[i];
        // advanceTo runs >= 1 kernel iteration exactly when the SoC
        // is unfinished and behind the horizon; recording the
        // predicate (not a step count) keeps the stat O(1).
        if (!soc.done() && soc.now() < horizon_)
            ++shard.stepped;
        soc.advanceTo(horizon_);
        if (on_advanced_)
            on_advanced_(i);
        shard.minNextEvent =
            std::min(shard.minNextEvent, soc.nextEventTime());
    }
    if (profile_)
        shard.advanceSec += timer.seconds();
}

void
ParallelEngine::workerLoop(std::size_t shard_idx)
{
    std::uint64_t seen = 0;
    for (;;) {
        {
            WallTimer wait_timer;
            std::unique_lock<std::mutex> lock(mu_);
            cv_work_.wait(lock, [&]() {
                return shutdown_ || generation_ != seen;
            });
            // Written under mu_ by the owning worker only; the
            // coordinator reads it between epochs (phaseTotals).
            if (profile_)
                shards_[shard_idx].waitSec += wait_timer.seconds();
            if (shutdown_)
                return;
            seen = generation_;
        }
        runShard(shards_[shard_idx]);
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++done_count_;
        }
        cv_done_.notify_one();
    }
}

void
ParallelEngine::reduceShardMinima()
{
    // Index-order reduction on the coordinator: the fleet bound (and
    // any future cross-shard aggregate) must never depend on worker
    // completion order.  min over Cycles is order-insensitive anyway;
    // the fixed order is the discipline that keeps it so as the
    // aggregates grow richer.
    Cycles fleet_min = sim::kNoEvent;
    for (const Shard &shard : shards_)
        fleet_min = std::min(fleet_min, shard.minNextEvent);
    fleet_next_event_ = fleet_min;
}

void
ParallelEngine::advanceFleet(Cycles horizon)
{
    // Conservative-lookahead fast path: no SoC has pending activity
    // before the horizon, so every per-SoC advance loop would run
    // zero iterations — skip the barrier round-trip entirely.  This
    // is the simultaneous-arrival / drained-fleet case; it is a pure
    // no-op skip, so serial and sharded runs count it identically.
    if (fleet_next_event_ >= horizon) {
        stats_.horizonStalls++;
        return;
    }

    stats_.epochs++;
    horizon_ = horizon;
    if (workers_.empty()) {
        runShard(shards_[0]);
    } else {
        {
            std::lock_guard<std::mutex> lock(mu_);
            done_count_ = 0;
            ++generation_;
        }
        cv_work_.notify_all();
        std::unique_lock<std::mutex> lock(mu_);
        cv_done_.wait(lock, [&]() {
            return done_count_ == workers_.size();
        });
    }

    for (const Shard &shard : shards_)
        stats_.socsStepped += shard.stepped;
    reduceShardMinima();
}

void
ParallelEngine::phaseTotals(double &advance_sec,
                            double &wait_sec) const
{
    advance_sec = 0.0;
    wait_sec = 0.0;
    for (const Shard &shard : shards_) {
        advance_sec += shard.advanceSec;
        wait_sec += shard.waitSec;
    }
}

void
ParallelEngine::noteInjected(std::size_t soc_idx)
{
    if (soc_idx >= socs_.size())
        panic("noteInjected(%zu): fleet has %zu SoCs", soc_idx,
              socs_.size());
    // An injection can only move a SoC's bound *earlier* (a drained
    // SoC becomes runnable); refresh the owning shard's cached
    // minimum and re-reduce.  Shard lookup is O(shards) — injections
    // happen once per task, off the hot path.
    for (Shard &shard : shards_) {
        if (soc_idx >= shard.begin && soc_idx < shard.end) {
            shard.minNextEvent =
                std::min(shard.minNextEvent,
                         socs_[soc_idx]->nextEventTime());
            reduceShardMinima();
            return;
        }
    }
}

void
ParallelEngine::refreshShard(std::size_t soc_idx)
{
    // Unlike noteInjected's min-merge, coordinator mutations like
    // deactivation can move a shard's bound *later*: recompute it
    // from scratch over the shard's active slots, then re-reduce in
    // shard-index order as always.
    for (Shard &shard : shards_) {
        if (soc_idx >= shard.begin && soc_idx < shard.end) {
            shard.minNextEvent = sim::kNoEvent;
            for (std::size_t i = shard.begin; i < shard.end; ++i)
                if (active_[i] != 0)
                    shard.minNextEvent =
                        std::min(shard.minNextEvent,
                                 socs_[i]->nextEventTime());
            reduceShardMinima();
            return;
        }
    }
}

void
ParallelEngine::setActive(std::size_t soc_idx, bool active)
{
    if (soc_idx >= socs_.size())
        panic("setActive(%zu): fleet has %zu SoCs", soc_idx,
              socs_.size());
    if ((active_[soc_idx] != 0) == active)
        return;
    active_[soc_idx] = active ? 1 : 0;
    refreshShard(soc_idx);
}

bool
ParallelEngine::isActive(std::size_t soc_idx) const
{
    if (soc_idx >= socs_.size())
        panic("isActive(%zu): fleet has %zu SoCs", soc_idx,
              socs_.size());
    return active_[soc_idx] != 0;
}

void
ParallelEngine::replaceSoc(std::size_t soc_idx, sim::Soc *soc)
{
    if (soc_idx >= socs_.size())
        panic("replaceSoc(%zu): fleet has %zu SoCs", soc_idx,
              socs_.size());
    if (soc == nullptr)
        fatal("replaceSoc(%zu): SoC is null", soc_idx);
    socs_[soc_idx] = soc;
    refreshShard(soc_idx);
}

} // namespace moca::cluster
