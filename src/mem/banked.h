/**
 * @file
 * The `banked` memory model: bank-aware DRAM + L2.
 *
 * DRAM.  The channel is split into `banks` banks.  A requester's
 * step demand of D bytes is interleaved over span(D) = min(banks,
 * ceil(D / row_bytes)) consecutive banks starting at its home bank
 * (remap=xor scatters home banks by a hash of the requester id;
 * remap=mod clusters them, so adjacent jobs collide — the ablation
 * knob).  Each bank owns `horizon` cycles of service time; a
 * requester's bytes on a bank cost time at its *current service
 * rate*
 *
 *     rate_i = loc_i * row_hit_bpc + (1 - loc_i) * row_miss_bpc
 *
 * where loc_i in [0, 1] is the requester's streaming-locality state.
 * Bank time is arbitrated demand-proportionally (FCFS-style, the
 * SocConfig::dramProportionalArbitration default) or max-min fairly,
 * and total granted bytes are clamped to the channel bandwidth —
 * minus the channel time row misses burn: every missed row costs
 * `miss_cycles` of activate/precharge overhead during which the data
 * bus moves nothing, so interleaving-induced locality loss derates
 * the *whole channel*, not just the missing requester.  A lone
 * streamer (locality 1) pays nothing.
 *
 * Locality.  loc_i starts at 1 (a lone streamer keeps its row
 * buffers open) and relaxes exponentially — time constant
 * `locality_tau` — toward the requester's share of the traffic on
 * its own banks: co-runners interleaving on the same banks destroy
 * each other's row locality, which degrades their service toward the
 * row-miss rate.  This is the *emergent* replacement for the flat
 * model's global thrash heuristic: the slowdown appears only when
 * interleaved demand actually keeps shared banks busy, recovers when
 * a co-runner leaves, and responds to MoCA's throttling exactly the
 * way the paper argues (regulated issue rates -> fewer in-flight
 * interleaved requests -> locality preserved).
 *
 * L2.  The shared L2's `SocConfig::l2Banks` bank ports are modeled
 * the same way (interleaved spans, per-bank max-min at the per-bank
 * bandwidth, no row state); service lost relative to the aggregate
 * L2 bandwidth is counted as bank-conflict loss.
 */

#ifndef MOCA_MEM_BANKED_H
#define MOCA_MEM_BANKED_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mem/memory_model.h"
#include "sim/arbiter.h"

namespace moca::mem {

/** Bank remap policy: how requester ids map to home banks. */
enum class BankRemap
{
    Xor, ///< Hash-scattered home banks (the default).
    Mod, ///< id % banks — adjacent requesters collide (ablation).
};

/** Parameters of the banked model (spec grammar surface). */
struct BankedConfig
{
    /** DRAM bank count. */
    int banks = 8;

    /** Row-buffer-hit service rate per bank in bytes/cycle; 0 derives
     *  the SoC's channel bandwidth (a lone streamer runs at full
     *  speed regardless of bank count). */
    double rowHitBpc = 0.0;

    /** Row-buffer-miss service rate per bank; 0 derives hit/4. */
    double rowMissBpc = 0.0;

    /** Home-bank remap policy. */
    BankRemap remap = BankRemap::Xor;

    /** DRAM row (and L2 interleave-span) granularity in bytes. */
    std::uint64_t rowBytes = 1024;

    /** Channel cycles of activate/precharge overhead per missed row
     *  (data bus idle while the bank turns around). */
    Cycles missCycles = 24;

    /** Locality relaxation time constant in cycles; also the bound
     *  the model reports to the event kernel via
     *  cyclesUntilNextChange(). */
    Cycles localityTau = 16384;

    /** Apply one spec parameter; false when the key is unknown. */
    bool applyParam(const std::string &key, const std::string &value);
};

class BankedMemoryModel : public MemoryModel
{
  public:
    BankedMemoryModel(const sim::SocConfig &cfg,
                      const BankedConfig &bc);

    const char *name() const override { return "banked"; }

    const std::vector<MemGrant> &
    arbitrate(const std::vector<MemRequest> &requests, Cycles horizon,
              MemStepStats &stats) override;

    Cycles cyclesUntilNextChange() const override
    {
        return bc_.localityTau;
    }

    // --- Inspection (tests, reporting) --------------------------------

    const BankedConfig &config() const { return bc_; }

    /** Home DRAM bank of requester `id` under the remap policy. */
    int homeBank(int id) const;

    /** Banks a `bytes`-sized step demand interleaves over. */
    int bankSpan(double bytes, int num_banks) const;

    /** Current locality state of requester `id` (1.0 if unseen). */
    double locality(int id) const;

    /** Effective service rate of requester `id` in bytes/cycle/bank. */
    double serviceRate(int id) const;

  private:
    sim::SocConfig cfg_;
    BankedConfig bc_;
    double hitBpc_ = 0.0;  ///< Resolved row-hit rate.
    double missBpc_ = 0.0; ///< Resolved row-miss rate.

    /** Per-requester streaming-locality state in [0, 1]. */
    std::map<int, double> locality_;

    /** High-resolution row-activation accumulators behind the
     *  integer MemTraffic counters. */
    double rowHitAcc_ = 0.0;
    double rowMissAcc_ = 0.0;

    /** One requester's slice of one bank's demand for a step. */
    struct Slice
    {
        std::size_t req; ///< Index into the request vector.
        double bytes;    ///< Demand routed to this bank.
    };

    // Per-step scratch, reused across arbitrate() calls: arbitrate
    // runs once per simulation step, so fresh allocations here would
    // dominate the model's cost on long-horizon runs.
    std::vector<std::vector<Slice>> bankDemand_; ///< Per DRAM bank.
    std::vector<std::vector<Slice>> l2Demand_;   ///< Per L2 bank.
    std::vector<double> bankTotal_;
    std::vector<double> bankGranted_;
    std::vector<double> loc_; ///< Per-request locality snapshot.
    std::vector<sim::BwDemand> treq_;
    std::vector<double> tgrant_;
    std::vector<MemGrant> grants_; ///< arbitrate() return buffer.
};

/** Registration record of the built-in banked model. */
MemoryModelInfo bankedModelInfo();

} // namespace moca::mem

#endif // MOCA_MEM_BANKED_H
