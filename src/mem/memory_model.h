/**
 * @file
 * Pluggable shared-memory-hierarchy models.
 *
 * The paper's thesis is memory-centric — "execution latency is highly
 * correlated with the number of in-flight memory requests" — so the
 * fidelity of the shared DRAM/L2 model matters.  A `MemoryModel` is
 * the seam: each simulation step the SoC presents every running job's
 * byte demand over the step horizon, and the model returns the bytes
 * each requester is actually served (plus per-step accounting).
 * Because grants are a pure function of (demands, horizon, internal
 * model state), both time-advance kernels can drive the same model:
 * the quantum kernel calls it once per fixed quantum, the event kernel
 * once per variable-length step, and `cyclesUntilNextChange()` lets a
 * stateful model bound the event kernel's step so its internal state
 * (e.g. row-buffer locality) is sampled often enough.
 *
 * Models are string-keyed self-registering factories behind
 * `MemoryModelRegistry` — the third client of moca::SpecRegistry after
 * the policy and dispatcher registries — with the shared spec grammar
 *
 *     name[:key=value[,key=value...]]
 *
 * e.g. `flat`, `banked:banks=16,remap=mod`.  Built-ins:
 *
 *  - `flat`   one DRAM bandwidth number + the oversubscription-thrash
 *             derate and aggregate L2 bandwidth (the original
 *             arbitration path, extracted verbatim: metric-identical
 *             to the pre-mem-subsystem simulator).
 *  - `banked` bank-aware DRAM + L2: per-bank demand mapping with
 *             address-interleave hashing, row-hit vs row-miss service
 *             rates, a per-requester streaming-locality state that
 *             degrades as co-runners interleave on the same banks
 *             (the thrash pathology, emergent instead of heuristic),
 *             and L2 bank-port contention.
 *
 * Registration is open via `MemoryModelRegistrar`, so experiments can
 * plug in custom hierarchies without touching this file.
 */

#ifndef MOCA_MEM_MEMORY_MODEL_H
#define MOCA_MEM_MEMORY_MODEL_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/spec.h"
#include "common/spec_registry.h"
#include "common/units.h"
#include "sim/config.h"

namespace moca::mem {

/** Memory-model specs use the shared registry grammar. */
using MemSpec = moca::Spec;
/** ... and the shared parameter-schema entry type. */
using MemParam = moca::SpecParam;

/** One requester's byte demand for a step. */
struct MemRequest
{
    /** Requester (job) id — stable across steps, so stateful models
     *  can track per-requester state such as streaming locality. */
    int id = -1;
    double dramBytes = 0.0; ///< DRAM demand over the horizon.
    double l2Bytes = 0.0;   ///< L2 demand over the horizon.
    double weight = 1.0;    ///< DMA engine count (tiles).
};

/** Bytes granted to one requester for a step. */
struct MemGrant
{
    double dramBytes = 0.0;
    double l2Bytes = 0.0;
};

/** Per-step accounting the SoC folds into its SocStats. */
struct MemStepStats
{
    /** The flat model's oversubscription derate fired this step. */
    bool thrashed = false;
    /** DRAM bytes lost to the derate this step. */
    double thrashLostBytes = 0.0;
};

/**
 * Cumulative per-level traffic counters a model maintains across a
 * run, surfaced through ScenarioResult and the CSV/JSON sinks so
 * sweeps can plot memory behavior, not just end metrics.  The flat
 * model has no bank state and leaves everything zero.
 */
struct MemTraffic
{
    std::uint64_t dramRowHits = 0;   ///< Row-buffer-hit activations.
    std::uint64_t dramRowMisses = 0; ///< Row-buffer-miss activations.
    /** Granted DRAM bytes per bank (empty for bank-less models). */
    std::vector<double> bankBytes;
    /** L2 bytes denied by bank-port conflicts that the aggregate
     *  (flat) L2 bandwidth would have served. */
    double l2ConflictLostBytes = 0.0;

    /** Coefficient of variation of bankBytes (0 = perfectly balanced
     *  or bank-less). */
    double bankBytesCv() const;
    /** Row-hit fraction of all activations (0 when none counted). */
    double rowHitRate() const;
};

/**
 * A shared-memory-hierarchy model.  One instance per Soc per run;
 * implementations may keep per-requester state and are only ever
 * called from that Soc's (single) simulation thread.
 */
class MemoryModel
{
  public:
    virtual ~MemoryModel() = default;

    virtual const char *name() const = 0;

    /**
     * Arbitrate one step: grant each requester a share of the shared
     * DRAM channel and L2 bandwidth over `horizon` cycles.  Grants
     * must satisfy 0 <= grant <= demand per requester and respect the
     * model's aggregate capacities.  Requesters with zero demand
     * (e.g. stalled jobs) are present and must receive zero grants.
     *
     * Returns a reference to a model-owned buffer, valid until the
     * next arbitrate() call on the same model: arbitration runs once
     * per simulation step, so returning a fresh vector would put an
     * allocation on the hottest path of long-horizon runs.
     */
    virtual const std::vector<MemGrant> &
    arbitrate(const std::vector<MemRequest> &requests, Cycles horizon,
              MemStepStats &stats) = 0;

    /**
     * Upper bound on how long the grants just computed stay a good
     * approximation: the event kernel caps its step at now + this so
     * the model's internal state (e.g. locality decay) is re-sampled
     * often enough.  0 means "stateless — no bound needed" (the flat
     * model), which keeps the event stream, and therefore the
     * simulation, bit-identical to the pre-mem-subsystem kernel.
     */
    virtual Cycles cyclesUntilNextChange() const { return 0; }

    /** Cumulative traffic counters (valid any time). */
    const MemTraffic &traffic() const { return traffic_; }

  protected:
    MemTraffic traffic_;
};

/** Everything the registry knows about one memory model. */
struct MemoryModelInfo
{
    std::string name;
    std::string description;
    std::vector<MemParam> params;

    /**
     * Build the model for `cfg` with `spec`'s parameters applied.
     * Called with an already-validated spec (name matches, every
     * param key is declared); malformed parameter *values* are fatal
     * here.  Must be thread-safe: sweep workers build concurrently.
     */
    std::function<std::unique_ptr<MemoryModel>(
        const sim::SocConfig &cfg, const MemSpec &spec)>
        factory;
};

/**
 * The process-wide memory-model registry (moca::SpecRegistry client;
 * iteration order is registration order, built-ins first).
 */
class MemoryModelRegistry : public moca::SpecRegistry<MemoryModelInfo>
{
  public:
    static MemoryModelRegistry &instance();

    /** Parse, validate, and build a model from a spec string. */
    std::unique_ptr<MemoryModel> make(const std::string &spec,
                                      const sim::SocConfig &cfg) const;
    std::unique_ptr<MemoryModel> make(const MemSpec &spec,
                                      const sim::SocConfig &cfg) const;

    /**
     * Full spec validation against the SoC configuration the model
     * will run on: grammar, name (did-you-mean on typos), declared
     * parameter keys, and parameter *values*, by trial-building the
     * model.  Fatal with actionable messages before any simulation
     * work starts.
     */
    void validate(const std::string &spec,
                  const sim::SocConfig &cfg) const;

  private:
    MemoryModelRegistry()
        : SpecRegistry("memory model", "memory models",
                       "--list-mem-models")
    {
    }
};

/**
 * Link-time self-registration hook:
 *
 *     static mem::MemoryModelRegistrar reg({"mine", "...", {...},
 *                                           factory});
 */
struct MemoryModelRegistrar
{
    explicit MemoryModelRegistrar(MemoryModelInfo info)
    {
        MemoryModelRegistry::instance().add(std::move(info));
    }
};

} // namespace moca::mem

#endif // MOCA_MEM_MEMORY_MODEL_H
