#include "mem/memory_model.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "mem/banked.h"
#include "sim/arbiter.h"

namespace moca::mem {

double
MemTraffic::bankBytesCv() const
{
    if (bankBytes.empty())
        return 0.0;
    double mean = 0.0;
    for (double b : bankBytes)
        mean += b;
    mean /= static_cast<double>(bankBytes.size());
    if (mean <= 0.0)
        return 0.0;
    double var = 0.0;
    for (double b : bankBytes) {
        const double d = b - mean;
        var += d * d;
    }
    return std::sqrt(var / static_cast<double>(bankBytes.size())) /
        mean;
}

double
MemTraffic::rowHitRate() const
{
    const std::uint64_t total = dramRowHits + dramRowMisses;
    return total == 0 ? 0.0
                      : static_cast<double>(dramRowHits) /
            static_cast<double>(total);
}

namespace {

/**
 * The original arbitration path extracted verbatim from Soc::arbitrate:
 * one DRAM channel with the oversubscription-thrash derate, plus the
 * aggregate L2 bandwidth.  Stateless, so the event kernel needs no
 * extra events and stays bit-identical to the pre-mem-subsystem
 * simulator.
 */
class FlatMemoryModel : public MemoryModel
{
  public:
    explicit FlatMemoryModel(const sim::SocConfig &cfg) : cfg_(cfg) {}

    const char *name() const override { return "flat"; }

    const std::vector<MemGrant> &
    arbitrate(const std::vector<MemRequest> &requests, Cycles horizon,
              MemStepStats &stats) override
    {
        dram_req_.clear();
        l2_req_.clear();
        dram_req_.reserve(requests.size());
        l2_req_.reserve(requests.size());
        for (const auto &r : requests) {
            dram_req_.push_back({r.dramBytes, r.weight});
            l2_req_.push_back({r.l2Bytes, r.weight});
        }

        const double q = static_cast<double>(horizon);
        double total_demand = 0.0;
        double max_demand = 0.0;
        for (const auto &r : requests) {
            total_demand += r.dramBytes;
            max_demand = std::max(max_demand, r.dramBytes);
        }
        const sim::ThrashOutcome thrash = sim::applyDramThrash(
            total_demand, max_demand, cfg_.dramBytesPerCycle * q,
            cfg_.dramThrashOnset, cfg_.dramThrashFactor);
        stats.thrashed = thrash.thrashed;
        stats.thrashLostBytes = thrash.lostBytes;

        if (cfg_.dramProportionalArbitration)
            sim::allocateBandwidthProportional(dram_req_,
                                               thrash.capacity, dram_);
        else
            sim::allocateBandwidth(dram_req_, thrash.capacity, dram_);
        sim::allocateBandwidth(l2_req_, cfg_.l2BytesPerCycle() * q,
                               l2_);

        grants_.assign(requests.size(), MemGrant{});
        for (std::size_t i = 0; i < requests.size(); ++i) {
            grants_[i].dramBytes = dram_[i];
            grants_[i].l2Bytes = l2_[i];
        }
        return grants_;
    }

  private:
    sim::SocConfig cfg_;
    // Per-step scratch (one model instance per Soc, single-threaded).
    std::vector<sim::BwDemand> dram_req_, l2_req_;
    std::vector<double> dram_, l2_;
    std::vector<MemGrant> grants_;
};

void
registerBuiltins(MemoryModelRegistry &reg)
{
    reg.add({
        "flat",
        "single DRAM bandwidth + oversubscription-thrash derate and "
        "aggregate L2 (the original model; the default)",
        {},
        [](const sim::SocConfig &cfg, const MemSpec &) {
            return std::make_unique<FlatMemoryModel>(cfg);
        },
    });
    reg.add(bankedModelInfo());
}

} // anonymous namespace

MemoryModelRegistry &
MemoryModelRegistry::instance()
{
    // detlint: allow(R4) magic-static init; read-only after startup
    static MemoryModelRegistry reg = [] {
        MemoryModelRegistry r;
        registerBuiltins(r);
        return r;
    }();
    return reg;
}

std::unique_ptr<MemoryModel>
MemoryModelRegistry::make(const MemSpec &spec,
                          const sim::SocConfig &cfg) const
{
    return checkSpec(spec).factory(cfg, spec);
}

std::unique_ptr<MemoryModel>
MemoryModelRegistry::make(const std::string &spec,
                          const sim::SocConfig &cfg) const
{
    return make(MemSpec::parse(spec, "memory model"), cfg);
}

void
MemoryModelRegistry::validate(const std::string &spec,
                              const sim::SocConfig &cfg) const
{
    // Memory-model parameter ranges are checked at construction, and
    // construction is cheap — so a trial build catches bad *values*
    // against the actual SoC configuration up front, before a sweep
    // spends minutes generating traces only to die in a worker.
    (void)make(MemSpec::parse(spec, "memory model"), cfg);
}

} // namespace moca::mem
