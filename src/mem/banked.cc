#include "mem/banked.h"

#include <algorithm>
#include <cmath>

#include "common/argparse.h"
#include "common/log.h"
#include "sim/arbiter.h"

namespace moca::mem {

namespace {

/** splitmix64 finalizer: scatters requester ids across home banks. */
std::uint64_t
mixId(std::uint64_t z)
{
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // anonymous namespace

bool
BankedConfig::applyParam(const std::string &key,
                         const std::string &value)
{
    if (key == "banks") {
        banks = static_cast<int>(parseIntValue("banked:banks", value));
    } else if (key == "row_hit_bpc") {
        rowHitBpc = parseDoubleValue("banked:row_hit_bpc", value);
    } else if (key == "row_miss_bpc") {
        rowMissBpc = parseDoubleValue("banked:row_miss_bpc", value);
    } else if (key == "remap") {
        if (value == "xor")
            remap = BankRemap::Xor;
        else if (value == "mod")
            remap = BankRemap::Mod;
        else
            fatal("banked:remap=%s (expected xor or mod)",
                  value.c_str());
    } else if (key == "row_bytes") {
        rowBytes = static_cast<std::uint64_t>(
            parseIntValue("banked:row_bytes", value));
    } else if (key == "miss_cycles") {
        missCycles = static_cast<Cycles>(
            parseIntValue("banked:miss_cycles", value));
    } else if (key == "locality_tau") {
        localityTau = static_cast<Cycles>(
            parseIntValue("banked:locality_tau", value));
    } else {
        return false;
    }
    return true;
}

BankedMemoryModel::BankedMemoryModel(const sim::SocConfig &cfg,
                                     const BankedConfig &bc)
    : cfg_(cfg), bc_(bc)
{
    if (bc_.banks < 1)
        fatal("banked: banks must be >= 1 (got %d)", bc_.banks);
    if (bc_.rowBytes < 1)
        fatal("banked: row_bytes must be >= 1");
    if (bc_.localityTau < 1)
        fatal("banked: locality_tau must be >= 1");
    hitBpc_ = bc_.rowHitBpc > 0.0 ? bc_.rowHitBpc
                                  : cfg_.dramBytesPerCycle;
    missBpc_ = bc_.rowMissBpc > 0.0 ? bc_.rowMissBpc : hitBpc_ / 4.0;
    if (hitBpc_ <= 0.0 || missBpc_ <= 0.0 || missBpc_ > hitBpc_)
        fatal("banked: need 0 < row_miss_bpc <= row_hit_bpc "
              "(resolved hit=%.3f miss=%.3f)", hitBpc_, missBpc_);
    traffic_.bankBytes.assign(static_cast<std::size_t>(bc_.banks),
                              0.0);
    bankDemand_.resize(static_cast<std::size_t>(bc_.banks));
    bankTotal_.resize(static_cast<std::size_t>(bc_.banks));
    bankGranted_.resize(static_cast<std::size_t>(bc_.banks));
    l2Demand_.resize(
        static_cast<std::size_t>(std::max(1, cfg_.l2Banks)));
}

int
BankedMemoryModel::homeBank(int id) const
{
    if (bc_.remap == BankRemap::Mod)
        return id % bc_.banks;
    return static_cast<int>(
        mixId(static_cast<std::uint64_t>(id)) %
        static_cast<std::uint64_t>(bc_.banks));
}

int
BankedMemoryModel::bankSpan(double bytes, int num_banks) const
{
    if (bytes <= 0.0)
        return 0;
    const double rows =
        std::ceil(bytes / static_cast<double>(bc_.rowBytes));
    return static_cast<int>(
        std::min<double>(num_banks, std::max(1.0, rows)));
}

double
BankedMemoryModel::locality(int id) const
{
    const auto it = locality_.find(id);
    return it == locality_.end() ? 1.0 : it->second;
}

double
BankedMemoryModel::serviceRate(int id) const
{
    const double loc = locality(id);
    return loc * hitBpc_ + (1.0 - loc) * missBpc_;
}

const std::vector<MemGrant> &
BankedMemoryModel::arbitrate(const std::vector<MemRequest> &requests,
                             Cycles horizon, MemStepStats &stats)
{
    (void)stats; // No heuristic derate: contention is emergent.
    const std::size_t n = requests.size();
    const double q = static_cast<double>(horizon);
    std::vector<MemGrant> &grants = grants_;
    grants.assign(n, MemGrant{});
    if (n == 0 || q <= 0.0)
        return grants;

    // Locality resolved once per step: every phase below (service
    // rates, channel clamp, counters, relaxation targets) reads the
    // pre-step state, and the map is touched once per requester.
    loc_.assign(n, 1.0);
    for (std::size_t i = 0; i < n; ++i)
        loc_[i] = locality(requests[i].id);
    const auto rate = [&](std::size_t i) {
        return loc_[i] * hitBpc_ + (1.0 - loc_[i]) * missBpc_;
    };

    // ---- DRAM: route demand spans onto banks -------------------------
    const auto banks = static_cast<std::size_t>(bc_.banks);
    for (auto &bd : bankDemand_)
        bd.clear();
    bankTotal_.assign(banks, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double d = requests[i].dramBytes;
        const int k = bankSpan(d, bc_.banks);
        if (k == 0)
            continue;
        const double share = d / k;
        const int h = homeBank(requests[i].id);
        for (int j = 0; j < k; ++j) {
            const auto b = static_cast<std::size_t>(
                (h + j) % bc_.banks);
            bankDemand_[b].push_back({i, share});
            bankTotal_[b] += share;
        }
    }

    // ---- DRAM: per-bank service-time arbitration ---------------------
    //
    // A bank owns `horizon` cycles of service time; a requester's
    // bytes cost time at its locality-blended rate, so low-locality
    // requesters occupy the bank longer for the same data — the
    // mechanism by which interleaving hurts everyone sharing a bank.
    bankGranted_.assign(banks, 0.0);
    for (std::size_t b = 0; b < banks; ++b) {
        const auto &slices = bankDemand_[b];
        if (slices.empty())
            continue;
        treq_.clear();
        treq_.reserve(slices.size());
        for (const auto &s : slices)
            treq_.push_back(
                {s.bytes / rate(s.req), requests[s.req].weight});
        if (cfg_.dramProportionalArbitration)
            sim::allocateBandwidthProportional(treq_, q, tgrant_);
        else
            sim::allocateBandwidth(treq_, q, tgrant_);
        for (std::size_t s = 0; s < slices.size(); ++s) {
            const double bytes = std::min(
                slices[s].bytes, tgrant_[s] * rate(slices[s].req));
            grants[slices[s].req].dramBytes += bytes;
            bankGranted_[b] += bytes;
        }
    }

    // ---- DRAM: shared-channel clamp ----------------------------------
    //
    // Row misses burn channel time: each missed row keeps the data
    // bus idle for miss_cycles of bank turnaround, so the channel's
    // data capacity shrinks with the step's expected miss count —
    // the emergent replacement for the flat model's thrash derate.
    // A lone streamer (locality 1) misses nothing and pays nothing.
    double total_granted = 0.0;
    double weighted_miss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total_granted += grants[i].dramBytes;
        weighted_miss += grants[i].dramBytes * (1.0 - loc_[i]);
    }
    // Self-consistent capacity: every byte costs 1/bpc cycles of data
    // time plus (miss fraction x miss_cycles / row_bytes) cycles of
    // amortized turnaround, so the channel moves q / (cost per byte)
    // bytes.  The miss fraction is a property of the traffic *mix*
    // and is invariant under the final proportional scale-down.
    const double miss_frac =
        total_granted > 0.0 ? weighted_miss / total_granted : 0.0;
    const double cycles_per_byte = 1.0 / cfg_.dramBytesPerCycle +
        miss_frac * static_cast<double>(bc_.missCycles) /
            static_cast<double>(bc_.rowBytes);
    const double channel_cap = q / cycles_per_byte;
    if (total_granted > channel_cap && total_granted > 0.0) {
        const double scale = channel_cap / total_granted;
        for (auto &g : grants)
            g.dramBytes *= scale;
        for (auto &b : bankGranted_)
            b *= scale;
    }

    // ---- DRAM: traffic counters --------------------------------------
    for (std::size_t b = 0; b < banks; ++b)
        traffic_.bankBytes[b] += bankGranted_[b];
    for (std::size_t i = 0; i < n; ++i) {
        const double g = grants[i].dramBytes;
        if (g <= 0.0)
            continue;
        const double rows = g / static_cast<double>(bc_.rowBytes);
        rowHitAcc_ += rows * loc_[i];
        rowMissAcc_ += rows * (1.0 - loc_[i]);
    }
    traffic_.dramRowHits = static_cast<std::uint64_t>(rowHitAcc_);
    traffic_.dramRowMisses = static_cast<std::uint64_t>(rowMissAcc_);

    // ---- DRAM: locality relaxation -----------------------------------
    //
    // Target = the requester's share of the traffic on its own banks:
    // 1 when streaming alone, 1/x when x equal co-runners interleave
    // on the same banks.  Exponential relaxation with time constant
    // locality_tau, so short bursts barely move the state and
    // sustained co-location converges to the interleaved rate.
    const double alpha =
        1.0 - std::exp(-q / static_cast<double>(bc_.localityTau));
    for (std::size_t i = 0; i < n; ++i) {
        const double d = requests[i].dramBytes;
        const int k = bankSpan(d, bc_.banks);
        if (k == 0)
            continue;
        const double share = d / k;
        const int h = homeBank(requests[i].id);
        double other = 0.0;
        for (int j = 0; j < k; ++j)
            other += bankTotal_[static_cast<std::size_t>(
                         (h + j) % bc_.banks)] -
                share;
        const double target = d / (d + other);
        const auto it =
            locality_.try_emplace(requests[i].id, 1.0).first;
        it->second += alpha * (target - it->second);
    }

    // ---- L2: per-bank-port arbitration -------------------------------
    const auto l2banks = static_cast<std::size_t>(
        std::max(1, cfg_.l2Banks));
    for (auto &ld : l2Demand_)
        ld.clear();
    double l2_total_demand = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = requests[i].l2Bytes;
        l2_total_demand += d;
        const int k = bankSpan(d, static_cast<int>(l2banks));
        if (k == 0)
            continue;
        const double share = d / k;
        const int h = static_cast<int>(
            mixId(static_cast<std::uint64_t>(requests[i].id)) %
            l2banks);
        for (int j = 0; j < k; ++j)
            l2Demand_[(static_cast<std::size_t>(h) + j) % l2banks]
                .push_back({i, share});
    }
    const double l2_bank_cap = cfg_.l2BankBytesPerCycle * q;
    double l2_granted = 0.0;
    for (std::size_t b = 0; b < l2banks; ++b) {
        const auto &slices = l2Demand_[b];
        if (slices.empty())
            continue;
        treq_.clear();
        treq_.reserve(slices.size());
        for (const auto &s : slices)
            treq_.push_back({s.bytes, requests[s.req].weight});
        sim::allocateBandwidth(treq_, l2_bank_cap, tgrant_);
        for (std::size_t s = 0; s < slices.size(); ++s) {
            grants[slices[s].req].l2Bytes += tgrant_[s];
            l2_granted += tgrant_[s];
        }
    }
    // Conflict loss: what the aggregate (flat) L2 bandwidth would
    // have served but concentrated bank-port demand did not.
    const double flat_l2 =
        std::min(l2_total_demand, cfg_.l2BytesPerCycle() * q);
    traffic_.l2ConflictLostBytes +=
        std::max(0.0, flat_l2 - l2_granted);

    return grants;
}

namespace {

template <typename Config>
Config
configFromSpec(const MemSpec &spec)
{
    Config cfg;
    for (const auto &[key, value] : spec.params) {
        if (!cfg.applyParam(key, value))
            panic("memory model %s declares parameter '%s' but its "
                  "applyParam does not handle it",
                  spec.name.c_str(), key.c_str());
    }
    return cfg;
}

} // anonymous namespace

MemoryModelInfo
bankedModelInfo()
{
    return {
        "banked",
        "bank-aware DRAM + L2: interleaved bank spans, row-hit vs "
        "row-miss rates, emergent per-requester locality loss, "
        "L2 bank-port contention",
        {{"banks", "int", "8", "DRAM bank count"},
         {"row_hit_bpc", "double", "0",
          "row-hit service rate per bank in B/cyc (0 = channel BW)"},
         {"row_miss_bpc", "double", "0",
          "row-miss service rate per bank in B/cyc (0 = hit/4)"},
         {"remap", "xor|mod", "xor",
          "home-bank remap: hash-scattered or id-modulo (ablation)"},
         {"row_bytes", "int", "1024",
          "DRAM row / interleave-span granularity in bytes"},
         {"miss_cycles", "int", "24",
          "channel cycles of turnaround overhead per missed row"},
         {"locality_tau", "int", "16384",
          "locality relaxation time constant in cycles"}},
        [](const sim::SocConfig &cfg, const MemSpec &spec) {
            return std::make_unique<BankedMemoryModel>(
                cfg, configFromSpec<BankedConfig>(spec));
        },
    };
}

} // namespace moca::mem
